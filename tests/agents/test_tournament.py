"""Tournament engine tests, culminating in the paper's falling-premium claim.

The acceptance test at the bottom is the headline of the tournament subsystem:
a multi-generation tournament on the paper-reference scenario must show the
mean bid premium *falling* from generation 0 to the final generation with
95%-CI separation — the emergent reproduction of the paper's live finding
that "the median [premium] has decreased significantly over time" (Section
V-C) — and the full tournament report must be byte-identical whether the
generations were evaluated serially or fanned across a process pool.
"""

import json

import numpy as np
import pytest

from repro.agents.tournament import (
    TournamentConfig,
    TournamentEngine,
    apportion_kinds,
    genome_score,
    initial_roster,
    next_generation,
)
from repro.agents.traits import Traits
from repro.simulation.catalog import (
    get_tournament,
    register_tournament,
    tournament_names,
)
from repro.simulation.runner import ParallelRunner, ScenarioRunResult, run_scenario
from repro.simulation.catalog import get_scenario


class TestApportionKinds:
    def test_exact_quota_split(self):
        assert apportion_kinds({"a": 0.5, "b": 0.3, "c": 0.2}, 10) == {"a": 5, "b": 3, "c": 2}

    def test_counts_always_sum_to_size(self):
        for size in (1, 3, 7, 11, 100):
            counts = apportion_kinds({"x": 1.0, "y": 1.0, "z": 1.0}, size)
            assert sum(counts.values()) == size

    def test_zero_weight_kind_gets_no_seats(self):
        counts = apportion_kinds({"a": 1.0, "b": 0.0}, 5)
        assert "b" not in counts

    def test_pure_function_of_inputs(self):
        a = apportion_kinds({"p": 2.0, "q": 1.0}, 9)
        b = apportion_kinds({"q": 1.0, "p": 2.0}, 9)
        assert a == b

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            apportion_kinds({"a": 1.0}, 0)


class TestNextGeneration:
    def _population(self, seed=2):
        return initial_roster(
            {"lowball": 1.0, "seller": 1.0, "market_tracker": 1.0},
            9,
            np.random.default_rng(seed),
        )

    def test_size_and_ecology_preserved(self):
        pop = self._population()
        scores = {g.name: float(i) for i, g in enumerate(pop)}
        kids = next_generation(pop, scores, np.random.default_rng(1), generation=1)
        assert len(kids) == len(pop)
        count = lambda roster, kind: sum(1 for g in roster if g.kind == kind)
        for kind in ("lowball", "seller", "market_tracker"):
            assert count(kids, kind) == count(pop, kind)

    def test_elites_survive_as_exact_clones(self):
        pop = self._population()
        scores = {g.name: float(i) for i, g in enumerate(pop)}
        kids = next_generation(
            pop, scores, np.random.default_rng(1), generation=1, elite_fraction=0.34
        )
        parent_traits = {g.name: g.traits for g in pop}
        clones = [k for k in kids if k.traits == parent_traits[k.parent]]
        # At least one elite clone per kind survives unchanged.
        assert len({c.kind for c in clones}) == 3

    def test_children_record_lineage(self):
        pop = self._population()
        scores = {g.name: 0.0 for g in pop}
        kids = next_generation(pop, scores, np.random.default_rng(4), generation=3)
        names = {g.name for g in pop}
        assert all(k.generation == 3 for k in kids)
        assert all(k.parent in names for k in kids)
        assert all(k.name.startswith("g3-") for k in kids)

    def test_reproducible_from_seed(self):
        pop = self._population()
        scores = {g.name: float(hash(g.name) % 7) for g in pop}
        a = next_generation(pop, scores, np.random.default_rng(9), generation=1)
        b = next_generation(pop, scores, np.random.default_rng(9), generation=1)
        assert a == b


class TestGenomeScore:
    def test_weighted_formula(self):
        outcome = {"surplus": 500.0, "overcommitment": 250.0, "satisfied_fraction": 1.0}
        assert genome_score(outcome, budget=1000.0) == 0.75

    def test_overcommitment_is_penalised(self):
        base = {"surplus": 100.0, "overcommitment": 0.0, "satisfied_fraction": 0.5}
        greedy = dict(base, overcommitment=400.0)
        assert genome_score(greedy, budget=1000.0) < genome_score(base, budget=1000.0)

    def test_missing_fields_default_to_zero(self):
        assert genome_score({}, budget=1000.0) == 0.0

    def test_canonical_rounding(self):
        outcome = {"surplus": 1.0 / 3.0, "overcommitment": 0.0, "satisfied_fraction": 0.0}
        score = genome_score(outcome, budget=1.0)
        assert score == round(score, 6)


class TestTournamentConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TournamentConfig(name="Bad Name", description="d")
        with pytest.raises(ValueError):
            TournamentConfig(name="t", description="d", generations=1)
        with pytest.raises(ValueError):
            TournamentConfig(name="t", description="d", replicates=0)
        with pytest.raises(ValueError):
            TournamentConfig(name="t", description="d", elite_fraction=0.0)
        with pytest.raises(ValueError):
            TournamentConfig(name="t", description="d", kind_mix={"lowball": -1.0})

    def test_catalog_presets_registered(self):
        names = tournament_names()
        assert "paper-tournament" in names
        assert "smoke-tournament" in names
        paper = get_tournament("paper-tournament")
        assert paper.base_scenario == "paper-reference"
        assert paper.generations >= 3

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError):
            register_tournament(get_tournament("smoke-tournament"))


class TestTeamScores:
    def test_roster_runs_carry_team_scores(self):
        cfg = get_tournament("smoke-tournament")
        engine = TournamentEngine(cfg)
        base = engine._base_spec()
        roster = initial_roster(
            dict(base.config.population.strategy_mix),
            base.config.population.team_count,
            np.random.default_rng(base.config.seed),
        )
        spec = engine._generation_specs(base, roster, 0)[0]
        result = run_scenario(spec)
        assert set(result.team_scores) == {g.name for g in roster}
        for outcome in result.team_scores.values():
            assert {"bids", "wins", "surplus", "overcommitment", "satisfied_fraction"} <= set(
                outcome
            )
            assert outcome["wins"] <= outcome["bids"]
            assert 0.0 <= outcome["satisfied_fraction"] <= 1.0

    def test_team_scores_survive_dict_roundtrip(self):
        cfg = get_tournament("smoke-tournament")
        engine = TournamentEngine(cfg)
        base = engine._base_spec()
        roster = initial_roster(
            dict(base.config.population.strategy_mix),
            base.config.population.team_count,
            np.random.default_rng(base.config.seed),
        )
        spec = engine._generation_specs(base, roster, 0)[0]
        result = run_scenario(spec)
        payload = json.loads(json.dumps(result.to_dict()))
        assert ScenarioRunResult.from_dict(payload) == result

    def test_plain_scenarios_report_no_team_scores(self):
        result = run_scenario(get_scenario("smoke").with_overrides(auctions=1))
        assert result.team_scores == {}
        assert "team_scores" not in result.to_dict()


@pytest.fixture(scope="module")
def paper_report():
    """One serial run of the paper tournament, shared by the acceptance tests."""
    return TournamentEngine(
        get_tournament("paper-tournament"), runner=ParallelRunner(workers=1)
    ).run()


class TestPaperTournamentAcceptance:
    """The headline claim: evolving bidders reproduce the falling premiums."""

    def test_premiums_fall_with_ci_separation(self, paper_report):
        trajectory = paper_report.premium_trajectory()
        assert len(trajectory) >= 3
        first, last = trajectory[0], trajectory[-1]
        assert first.ci95 is not None and last.ci95 is not None
        # 95%-CI separation: the final generation's premium interval lies
        # strictly below generation 0's.
        assert last.ci95[1] < first.ci95[0]
        assert last.mean < first.mean
        assert paper_report.premiums_fell

    def test_every_generation_full_provenance(self, paper_report):
        cfg = paper_report.config
        for gen_report in paper_report.generations:
            assert len(gen_report.results) == cfg.replicates
            assert len(gen_report.genomes) == len(paper_report.generations[0].genomes)
            assert set(gen_report.scores) == {g.name for g in gen_report.genomes}
            for result in gen_report.results:
                assert result.scenario == f"{cfg.name}-g{gen_report.generation}"

    def test_byte_identical_across_backends_and_workers(self, paper_report):
        serial_json = paper_report.to_json()
        process_report = TournamentEngine(
            get_tournament("paper-tournament"),
            runner=ParallelRunner(workers=2, backend="process"),
        ).run()
        assert process_report.to_json() == serial_json
