"""Unit and integration tests for the discrete-event engine, workload helpers, scenario, and economy."""

import numpy as np
import pytest

from repro.agents.population import PopulationSpec
from repro.cluster.fleet_gen import FleetSpec
from repro.simulation.economy import MarketEconomySimulation, run_economy
from repro.simulation.engine import SimulationEngine
from repro.simulation.scenario import ScenarioConfig, build_scenario, small_scenario
from repro.simulation.workload import (
    apply_settlement_to_utilization,
    demands_from_agents,
    organic_drift,
    priorities_from_agents,
)


class TestSimulationEngine:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(5.0, lambda e: order.append("late"), name="late")
        engine.schedule(1.0, lambda e: order.append("early"), name="early")
        engine.run()
        assert order == ["early", "late"]
        assert engine.now == 5.0
        assert engine.processed_events == 2

    def test_priority_breaks_ties(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(1.0, lambda e: order.append("b"), priority=1)
        engine.schedule(1.0, lambda e: order.append("a"), priority=0)
        engine.run()
        assert order == ["a", "b"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine().schedule(-1.0, lambda e: None)

    def test_schedule_at_and_past_rejected(self):
        engine = SimulationEngine(start_time=10.0)
        engine.schedule_at(12.0, lambda e: None)
        with pytest.raises(ValueError):
            engine.schedule_at(5.0, lambda e: None)

    def test_cancel(self):
        engine = SimulationEngine()
        fired = []
        handle = engine.schedule(1.0, lambda e: fired.append(1))
        engine.cancel(handle)
        engine.run()
        assert fired == []
        assert engine.pending() == 0

    def test_periodic_schedule(self):
        engine = SimulationEngine()
        ticks = []
        engine.schedule_periodic(2.0, lambda e: ticks.append(e.now), count=3)
        engine.run()
        assert ticks == [2.0, 4.0, 6.0]

    def test_periodic_validation(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            engine.schedule_periodic(0.0, lambda e: None, count=1)
        with pytest.raises(ValueError):
            engine.schedule_periodic(1.0, lambda e: None, count=-1)

    def test_run_until_bound(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda e: fired.append(1))
        engine.schedule(10.0, lambda e: fired.append(2))
        executed = engine.run(until=5.0)
        assert executed == 1 and fired == [1]
        assert engine.now == 5.0
        engine.run()
        assert fired == [1, 2]

    def test_max_events_bound(self):
        engine = SimulationEngine()
        for i in range(5):
            engine.schedule(float(i + 1), lambda e: None)
        assert engine.run(max_events=2) == 2
        assert engine.pending() == 3

    def test_events_can_schedule_events(self):
        engine = SimulationEngine()
        seen = []

        def first(e):
            seen.append("first")
            e.schedule(1.0, lambda e2: seen.append("chained"))

        engine.schedule(1.0, first)
        engine.run()
        assert seen == ["first", "chained"]
        assert [name for _, name in engine.trace] == ["", ""]


class TestWorkloadHelpers:
    def test_demands_from_agents(self):
        scenario = small_scenario(seed=1, team_count=10, cluster_count=4)
        demands = demands_from_agents(scenario.agents, scenario.pool_index)
        assert set(demands) <= {a.name for a in scenario.agents}
        assert all(all(q > 0 for q in bundle.values()) for bundle in demands.values())

    def test_priorities_are_in_range_and_deterministic(self):
        scenario = small_scenario(seed=1, team_count=20, cluster_count=4)
        a = priorities_from_agents(scenario.agents, seed=3)
        b = priorities_from_agents(scenario.agents, seed=3)
        assert a == b
        assert set(a.values()) <= {0, 1, 2}

    def test_organic_drift_stays_in_bounds(self, pool_index, rng):
        drifted = organic_drift(pool_index, rng=rng, drift_scale=0.5)
        utils = drifted.utilizations()
        assert np.all(utils >= 0.02) and np.all(utils <= 0.99)
        assert drifted.names == pool_index.names

    def test_organic_drift_zero_scale_is_identity(self, pool_index, rng):
        drifted = organic_drift(pool_index, rng=rng, drift_scale=0.0)
        np.testing.assert_allclose(drifted.utilizations(), pool_index.utilizations())

    def test_apply_settlement_to_utilization(self, pool_index):
        net = np.zeros(len(pool_index))
        net[pool_index.index_of("beta/cpu")] = pool_index.pool("beta/cpu").capacity * 0.1
        net[pool_index.index_of("alpha/cpu")] = -pool_index.pool("alpha/cpu").capacity * 0.1
        updated = apply_settlement_to_utilization(pool_index, net, move_out_fraction=1.0)
        assert updated.pool("beta/cpu").utilization == pytest.approx(0.4)
        assert updated.pool("alpha/cpu").utilization == pytest.approx(0.8)

    def test_move_out_fraction_limits_freed_load(self, pool_index):
        net = np.zeros(len(pool_index))
        net[pool_index.index_of("alpha/cpu")] = -pool_index.pool("alpha/cpu").capacity * 0.2
        updated = apply_settlement_to_utilization(pool_index, net, move_out_fraction=0.5)
        assert updated.pool("alpha/cpu").utilization == pytest.approx(0.8)
        with pytest.raises(ValueError):
            apply_settlement_to_utilization(pool_index, net, move_out_fraction=2.0)


class TestScenario:
    def test_build_scenario_registers_all_teams(self):
        scenario = small_scenario(seed=2, team_count=12, cluster_count=4)
        assert len(scenario.agents) == 12
        for agent in scenario.agents:
            assert scenario.platform.ledger.has_account(agent.name)
            assert scenario.platform.ledger.balance(agent.name) > 0

    def test_scenario_is_deterministic(self):
        a = small_scenario(seed=5)
        b = small_scenario(seed=5)
        np.testing.assert_allclose(a.pool_index.utilizations(), b.pool_index.utilizations())
        assert [x.name for x in a.agents] == [x.name for x in b.agents]

    def test_config_knobs_flow_through(self):
        config = ScenarioConfig(
            fleet=FleetSpec(cluster_count=5, machines_range=(5, 10)),
            population=PopulationSpec(team_count=7),
            operator_supply_fraction=0.5,
            seed=3,
        )
        scenario = build_scenario(config)
        assert len(scenario.fleet.clusters) == 5
        assert len(scenario.agents) == 7
        assert scenario.platform._operator_supply_fraction == 0.5


class TestEconomySimulation:
    @pytest.fixture(scope="class")
    def history(self):
        scenario = small_scenario(seed=4, team_count=25, cluster_count=8)
        sim = MarketEconomySimulation(scenario)
        return sim.run(3), scenario

    def test_runs_requested_number_of_auctions(self, history):
        hist, _ = history
        assert len(hist) == 3
        assert [p.auction_number for p in hist.periods] == [1, 2, 3]

    def test_every_auction_converges_and_verifies(self, history):
        hist, _ = history
        for period in hist.periods:
            assert period.record.result.outcome.converged
            assert period.record.result.constraints.satisfied, period.record.result.constraints.violations

    def test_premium_rows_and_series(self, history):
        hist, _ = history
        rows = hist.premium_rows()
        assert len(rows) == 3
        assert hist.median_premium_series() == [r.median_premium for r in rows]
        assert len(hist.utilization_spread_series()) == 3

    def test_agents_receive_feedback(self, history):
        hist, scenario = history
        assert any(agent.settlement_history for agent in scenario.agents)

    def test_platform_history_matches_periods(self, history):
        hist, scenario = history
        assert len(scenario.platform.history) == 3
        assert scenario.platform.history[0].auction_id == 1

    def test_utilization_evolves_between_auctions(self, history):
        hist, _ = history
        assert not np.allclose(hist.periods[0].utilization_before, hist.periods[-1].utilization_after)

    def test_trades_pooled_across_auctions(self, history):
        hist, _ = history
        assert len(hist.all_trades()) >= sum(len(p.trades) for p in hist.periods[:1])

    def test_run_economy_helper(self):
        scenario = small_scenario(seed=6, team_count=15, cluster_count=5)
        hist = run_economy(scenario, auctions=2)
        assert len(hist) == 2

    def test_invalid_parameters(self):
        scenario = small_scenario(seed=7, team_count=5, cluster_count=4)
        with pytest.raises(ValueError):
            MarketEconomySimulation(scenario, auction_period=0.0)
        with pytest.raises(ValueError):
            MarketEconomySimulation(scenario, preliminary_runs=-1)
        with pytest.raises(ValueError):
            MarketEconomySimulation(scenario).run(-1)

    def test_preliminary_runs_supported(self):
        scenario = small_scenario(seed=8, team_count=10, cluster_count=4)
        sim = MarketEconomySimulation(scenario, preliminary_runs=1)
        period = sim.run_one_auction()
        assert period.record.result.outcome.converged
