"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import EXIT_REGRESSION, build_parser, main
from repro.results.store import ResultStore
from repro.simulation.catalog import default_sweep_names

# Injected stored runs come from the shared ``fake_run_result`` factory
# fixture in tests/conftest.py (no economies run for the results-verb tests).


class TestParser:
    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "smoke", "--auctions", "2", "--seed", "7", "--engine", "batch", "--json"]
        )
        assert (args.scenario, args.auctions, args.seed, args.engine) == ("smoke", 2, 7, "batch")
        assert args.json

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.scenarios == []
        assert not args.all


class TestList:
    def test_table_names_every_scenario(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in default_sweep_names():
            assert name in out

    def test_json_mode(self, capsys):
        assert main(["list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert any(row["name"] == "paper-reference" for row in rows)

    def test_tag_filter(self, capsys):
        assert main(["list", "--tag", "stress", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert sorted(row["name"] for row in rows) == [
            "100k-bidder-stress",
            "10k-bidder-stress",
        ]


class TestRun:
    def test_unknown_scenario_exits_2_with_suggestions(self, capsys):
        assert main(["run", "no-such-economy"]) == 2
        err = capsys.readouterr().err
        assert "paper-reference" in err

    def test_run_smoke_json_report(self, capsys):
        assert main(["run", "smoke", "--workers", "1", "--auctions", "1", "--json"]) == 0
        captured = capsys.readouterr()
        report = json.loads(captured.out)
        assert report["aggregate"]["scenario_count"] == 1
        assert report["scenarios"][0]["scenario"] == "smoke"
        # progress/timing stay on stderr, never in the JSON artifact
        assert "finished in" in captured.err

    def test_out_file(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["run", "smoke", "--workers", "1", "--auctions", "1",
                     "--json", "--out", str(out)]) == 0
        assert json.loads(out.read_text()) == json.loads(capsys.readouterr().out)


class TestSweep:
    def test_explicit_scenario_selection(self, capsys):
        assert main(["sweep", "smoke", "--workers", "1", "--auctions", "1", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert [s["scenario"] for s in report["scenarios"]] == ["smoke"]

    def test_text_report_prints_aggregate_line(self, capsys):
        assert main(["sweep", "smoke", "--workers", "1", "--auctions", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 scenario(s)" in out
        assert "clock rounds per auction" in out

    def test_explicit_names_conflict_with_all(self, capsys):
        assert main(["sweep", "smoke", "--all"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_zero_replicates_rejected(self, capsys):
        assert main(["run", "smoke", "--replicates", "0"]) == 2
        assert "--replicates" in capsys.readouterr().err


class TestStorePersistence:
    def test_run_persists_replicates_to_the_store(self, tmp_path, capsys):
        db = tmp_path / "store.sqlite"
        assert main(["run", "smoke", "--workers", "1", "--auctions", "1",
                     "--replicates", "2", "--db", str(db)]) == 0
        assert "2 run(s) recorded" in capsys.readouterr().err
        with ResultStore(db) as store:
            assert len(store) == 2
            assert [r.seed for r in store.runs()] == [2009, 2010]
            assert store.code_versions() == ["test-version"]  # pinned in conftest

    def test_run_defaults_to_env_store(self, tmp_path, monkeypatch):
        db = tmp_path / "env-store.sqlite"
        monkeypatch.setenv("REPRO_RESULTS_DB", str(db))
        assert main(["run", "smoke", "--workers", "1", "--auctions", "1"]) == 0
        assert db.exists()

    def test_no_store_skips_persistence(self, tmp_path, capsys):
        db = tmp_path / "store.sqlite"
        assert main(["run", "smoke", "--workers", "1", "--auctions", "1",
                     "--no-store", "--db", str(db)]) == 0
        assert not db.exists()
        assert "recorded" not in capsys.readouterr().err

    def test_sweep_persists_under_explicit_code_version(self, tmp_path):
        db = tmp_path / "store.sqlite"
        assert main(["sweep", "smoke", "--workers", "1", "--auctions", "1",
                     "--db", str(db), "--code-version", "pr-42"]) == 0
        with ResultStore(db) as store:
            assert store.code_versions() == ["pr-42"]


class TestBackendCLI:
    def test_backend_list_names_every_backend(self, capsys):
        assert main(["sweep", "--backend", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("serial", "process", "remote"):
            assert name in out

    def test_backend_list_works_on_run_too(self, capsys):
        assert main(["run", "smoke", "--backend", "list"]) == 0
        assert "remote" in capsys.readouterr().out

    def test_unknown_backend_exits_2_with_available(self, capsys):
        assert main(["run", "smoke", "--backend", "teleport"]) == 2
        err = capsys.readouterr().err
        assert "serial" in err and "remote" in err

    def test_bind_without_remote_backend_exits_2(self, capsys):
        assert main(["run", "smoke", "--bind", "127.0.0.1:7077"]) == 2
        assert "--backend remote" in capsys.readouterr().err

    def test_malformed_bind_exits_2(self, capsys):
        assert main(["sweep", "smoke", "--backend", "remote", "--bind", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_explicit_serial_backend_runs_and_stamps_provenance(self, tmp_path):
        db = tmp_path / "store.sqlite"
        assert main(["run", "smoke", "--backend", "serial", "--auctions", "1",
                     "--db", str(db)]) == 0
        with ResultStore(db) as store:
            (run,) = store.runs()
            assert run.worker.startswith("serial:")

    def test_remote_backend_sweep_end_to_end(self, tmp_path):
        """CLI remote sweep against an in-process worker matches the serial
        report byte for byte."""
        import threading

        from repro.exec import run_worker

        # Bind port 0 via a pre-built backend is not reachable from the CLI,
        # so grab a free port the OS just released.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        worker = threading.Thread(
            target=run_worker,
            args=(f"127.0.0.1:{port}",),
            kwargs=dict(worker_id="cli-w1", retry_seconds=10.0),
            daemon=True,
        )
        worker.start()
        remote_out = tmp_path / "remote.json"
        serial_out = tmp_path / "serial.json"
        assert main(["sweep", "smoke", "--auctions", "1", "--backend", "remote",
                     "--bind", f"127.0.0.1:{port}", "--no-store",
                     "--out", str(remote_out)]) == 0
        worker.join(timeout=5)
        assert main(["sweep", "smoke", "--auctions", "1", "--workers", "1",
                     "--no-store", "--out", str(serial_out)]) == 0
        assert remote_out.read_bytes() == serial_out.read_bytes()


class TestWorkerCLI:
    def test_connect_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])

    def test_malformed_connect_exits_2(self, capsys):
        assert main(["worker", "--connect", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_invalid_capacity_exits_2(self, capsys):
        assert main(["worker", "--connect", "127.0.0.1:7077", "--capacity", "0"]) == 2
        assert "capacity" in capsys.readouterr().err

    def test_unreachable_coordinator_exits_1(self, capsys):
        assert main(["worker", "--connect", "127.0.0.1:1", "--retry", "0.2"]) == 1
        assert "no coordinator" in capsys.readouterr().err


class TestResultsVerbs:
    def seeded_db(self, tmp_path, fake_run_result):
        """Two code versions: v2 degrades revenue by ~50% vs v1."""
        db = tmp_path / "store.sqlite"
        with ResultStore(db) as store:
            for seed in (0, 1, 2):
                store.record(fake_run_result(scenario="smoke", seed=seed), code_version="v1")
                store.record(
                    fake_run_result(scenario="smoke", seed=seed, revenue=(50.0, 70.0)),
                    code_version="v2",
                )
        return db

    def test_list_shows_stored_groups(self, tmp_path, capsys, fake_run_result):
        db = self.seeded_db(tmp_path, fake_run_result)
        assert main(["results", "list", "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "v1" in out and "v2" in out

    def test_list_json(self, tmp_path, capsys, fake_run_result):
        db = self.seeded_db(tmp_path, fake_run_result)
        assert main(["results", "list", "--db", str(db), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {row["code_version"] for row in rows} == {"v1", "v2"}
        assert all(row["replicates"] == 3 for row in rows)

    def test_list_empty_store(self, tmp_path, capsys):
        assert main(["results", "list", "--db", str(tmp_path / "empty.sqlite")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_show_prints_mean_and_ci_per_metric(self, tmp_path, capsys, fake_run_result):
        db = self.seeded_db(tmp_path, fake_run_result)
        assert main(["results", "show", "smoke", "--db", str(db),
                     "--code-version", "v1"]) == 0
        out = capsys.readouterr().out
        assert "total_revenue" in out
        assert "95% CI" in out
        assert "3" in out  # replicate count

    def test_show_json_has_ci_bounds(self, tmp_path, capsys, fake_run_result):
        db = self.seeded_db(tmp_path, fake_run_result)
        assert main(["results", "show", "smoke", "--db", str(db), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["code_version"] == "v2"  # latest by default
        revenue = payload["metrics"]["total_revenue"]
        assert revenue["count"] == 3
        assert revenue["ci95"] == [revenue["mean"], revenue["mean"]]  # zero variance

    def test_show_unknown_scenario_exits_2(self, tmp_path, capsys, fake_run_result):
        db = self.seeded_db(tmp_path, fake_run_result)
        assert main(["results", "show", "no-such", "--db", str(db)]) == 2
        assert "no stored runs" in capsys.readouterr().err

    def test_show_mixed_engines_exits_2(self, tmp_path, capsys, fake_run_result):
        db = tmp_path / "store.sqlite"
        with ResultStore(db) as store:
            store.record(fake_run_result(scenario="smoke", engine="scalar"), code_version="v1")
            store.record(fake_run_result(scenario="smoke", engine="batch"), code_version="v1")
        assert main(["results", "show", "smoke", "--db", str(db)]) == 2
        assert "span engines" in capsys.readouterr().err
        assert main(["results", "show", "smoke", "--db", str(db),
                     "--engine", "batch"]) == 0

    def test_compare_flags_injected_regression_with_exit_3(self, tmp_path, capsys, fake_run_result):
        db = self.seeded_db(tmp_path, fake_run_result)
        code = main(["results", "compare", "smoke", "--db", str(db),
                     "--baseline", "v1", "--candidate", "v2"])
        assert code == EXIT_REGRESSION == 3
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "total_revenue" in captured.err

    def test_compare_defaults_to_latest_two_versions(self, tmp_path, fake_run_result):
        db = self.seeded_db(tmp_path, fake_run_result)
        assert main(["results", "compare", "smoke", "--db", str(db)]) == EXIT_REGRESSION

    def test_compare_with_older_candidate_takes_baseline_before_it(
        self, tmp_path, capsys, fake_run_result
    ):
        db = tmp_path / "store.sqlite"
        with ResultStore(db) as store:
            for version, revenue in (("v1", 100.0), ("v2", 150.0), ("v3", 200.0)):
                store.record(
                    fake_run_result(scenario="smoke", revenue=(revenue, revenue)),
                    code_version=version,
                )
        # candidate=v2 must compare v1 -> v2 (forward in time), not v3 -> v2:
        # revenue rose v1 -> v2, so a forward comparison is clean.
        assert main(["results", "compare", "smoke", "--db", str(db),
                     "--candidate", "v2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["baseline"] == "v1"

    def test_compare_oldest_candidate_has_no_default_baseline(
        self, tmp_path, capsys, fake_run_result
    ):
        db = self.seeded_db(tmp_path, fake_run_result)
        assert main(["results", "compare", "smoke", "--db", str(db),
                     "--candidate", "v1"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_compare_identical_versions_exits_0(self, tmp_path, capsys, fake_run_result):
        db = self.seeded_db(tmp_path, fake_run_result)
        assert main(["results", "compare", "smoke", "--db", str(db),
                     "--baseline", "v1", "--candidate", "v1"]) == 0
        assert "REGRESSION" not in capsys.readouterr().err

    def test_compare_json_reports_ok_flag(self, tmp_path, capsys, fake_run_result):
        db = self.seeded_db(tmp_path, fake_run_result)
        assert main(["results", "compare", "smoke", "--db", str(db),
                     "--baseline", "v1", "--candidate", "v2", "--json"]) == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert "total_revenue" in payload["regressions"]

    def test_compare_single_version_needs_explicit_baseline(
        self, tmp_path, capsys, fake_run_result
    ):
        db = tmp_path / "store.sqlite"
        with ResultStore(db) as store:
            store.record(fake_run_result(scenario="smoke"), code_version="only")
        assert main(["results", "compare", "smoke", "--db", str(db)]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_run_then_show_round_trip(self, tmp_path, capsys):
        """The acceptance path: run with replicates, then show mean/CI."""
        db = tmp_path / "store.sqlite"
        assert main(["run", "smoke", "--workers", "1", "--auctions", "1",
                     "--replicates", "2", "--db", str(db)]) == 0
        capsys.readouterr()
        assert main(["results", "show", "smoke", "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert "smoke @ test-version (2 replicate(s))" in out
        assert "mean_settled_fraction" in out


class TestMechanismCLI:
    def test_run_with_explicit_mechanism_persists_provenance(self, tmp_path, capsys):
        db = tmp_path / "store.sqlite"
        assert main(["run", "smoke", "--workers", "1", "--auctions", "1",
                     "--mechanism", "fixed-price", "--db", str(db)]) == 0
        with ResultStore(db) as store:
            (run,) = store.runs()
            assert run.mechanism == "fixed-price"
            assert run.wall_time is not None

    def test_run_with_all_mechanisms_crosses_replicates(self, tmp_path, capsys):
        db = tmp_path / "store.sqlite"
        assert main(["run", "smoke", "--workers", "1", "--auctions", "1",
                     "--mechanism", "all", "--replicates", "2", "--db", str(db)]) == 0
        with ResultStore(db) as store:
            assert len(store) == 10  # 5 mechanisms x 2 replicate seeds
            assert store.mechanisms() == sorted(
                ["market", "fixed-price", "lottery", "priority", "proportional"]
            )

    def test_unknown_mechanism_exits_2_with_available_list(self, capsys):
        assert main(["run", "smoke", "--mechanism", "bogus"]) == 2
        assert "fixed-price" in capsys.readouterr().err

    def test_sweep_mechanism_cross_product(self, tmp_path, capsys):
        db = tmp_path / "store.sqlite"
        assert main(["sweep", "smoke", "--workers", "1", "--auctions", "1",
                     "--mechanism", "market,priority", "--db", str(db), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert [(s["scenario"], s["mechanism"]) for s in report["scenarios"]] == [
            ("smoke", "market"),
            ("smoke", "priority"),
        ]

    def test_results_list_shows_mechanism_column(self, tmp_path, capsys, fake_run_result):
        db = tmp_path / "store.sqlite"
        with ResultStore(db) as store:
            store.record(fake_run_result(mechanism="proportional"), code_version="v1")
        assert main(["results", "list", "--db", str(db)]) == 0
        assert "proportional" in capsys.readouterr().out

    def test_results_show_mechanism_filter(self, tmp_path, capsys, fake_run_result):
        db = tmp_path / "store.sqlite"
        with ResultStore(db) as store:
            store.record(fake_run_result(), code_version="v1")
            store.record(fake_run_result(mechanism="priority"), code_version="v1")
        assert main(["results", "show", "smoke", "--db", str(db)]) == 2  # wrong scenario
        assert main(["results", "show", "tiny", "--db", str(db)]) == 2  # spans mechanisms
        assert "span mechanisms" in capsys.readouterr().err
        assert main(["results", "show", "tiny", "--db", str(db),
                     "--mechanism", "priority"]) == 0


class TestCompareMechanismsCLI:
    def seeded_db(self, tmp_path, fake_run_result):
        db = tmp_path / "store.sqlite"
        with ResultStore(db) as store:
            for seed in (0, 1):
                store.record(
                    fake_run_result(seed=seed, shortage_cost=(60.0, 40.0)),
                    code_version="v1",
                )
                store.record(
                    fake_run_result(seed=seed, mechanism="fixed-price",
                                    shortage_cost=(200.0, 180.0)),
                    code_version="v1",
                )
        return db

    def test_verb_renders_market_vs_baseline_table(self, tmp_path, capsys, fake_run_result):
        db = self.seeded_db(tmp_path, fake_run_result)
        assert main(["compare-mechanisms", "tiny", "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert "shortage_cost" in out
        assert "market leads on:" in out
        assert "shortage_cost" in out.split("market leads on:")[1]

    def test_verb_json_mode(self, tmp_path, capsys, fake_run_result):
        db = self.seeded_db(tmp_path, fake_run_result)
        assert main(["compare-mechanisms", "tiny", "--db", str(db), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["shortage_cost"]["best"] == "market"
        assert payload["mechanisms"][0] == "market"

    def test_results_compare_across_mechanisms_is_the_same_report(
        self, tmp_path, capsys, fake_run_result
    ):
        db = self.seeded_db(tmp_path, fake_run_result)
        assert main(["results", "compare", "tiny", "--db", str(db),
                     "--across", "mechanisms", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["shortage_cost"]["best"] == "market"

    def test_single_mechanism_store_exits_2(self, tmp_path, capsys, fake_run_result):
        db = tmp_path / "store.sqlite"
        with ResultStore(db) as store:
            store.record(fake_run_result(), code_version="v1")
        assert main(["compare-mechanisms", "tiny", "--db", str(db)]) == 2
        assert "at least two" in capsys.readouterr().err


class TestBaselineDbCompare:
    """results compare --baseline-db: the cross-PR CI regression gate."""

    def test_regression_against_previous_store_exits_3(
        self, tmp_path, capsys, fake_run_result
    ):
        previous = tmp_path / "previous.sqlite"
        current = tmp_path / "current.sqlite"
        with ResultStore(previous) as store:
            store.record(fake_run_result(revenue=(100.0, 140.0)), code_version="pr-1")
        with ResultStore(current) as store:
            store.record(fake_run_result(revenue=(10.0, 14.0)), code_version="pr-2")
        code = main(["results", "compare", "tiny", "--db", str(current),
                     "--baseline-db", str(previous)])
        assert code == EXIT_REGRESSION
        captured = capsys.readouterr()
        assert "total_revenue" in captured.err
        assert "pr-1" in captured.out  # baseline label came from the other store

    def test_clean_cross_store_compare_exits_0(self, tmp_path, capsys, fake_run_result):
        previous = tmp_path / "previous.sqlite"
        current = tmp_path / "current.sqlite"
        with ResultStore(previous) as store:
            store.record(fake_run_result(), code_version="pr-1")
        with ResultStore(current) as store:
            store.record(fake_run_result(), code_version="pr-2")
        assert main(["results", "compare", "tiny", "--db", str(current),
                     "--baseline-db", str(previous)]) == 0

    def test_missing_baseline_store_exits_2(self, tmp_path, capsys, fake_run_result):
        current = tmp_path / "current.sqlite"
        with ResultStore(current) as store:
            store.record(fake_run_result(), code_version="pr-2")
        assert main(["results", "compare", "tiny", "--db", str(current),
                     "--baseline-db", str(tmp_path / "nope.sqlite")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_baseline_store_without_the_scenario_exits_2(
        self, tmp_path, capsys, fake_run_result
    ):
        previous = tmp_path / "previous.sqlite"
        current = tmp_path / "current.sqlite"
        with ResultStore(previous) as store:
            store.record(fake_run_result(scenario="other"), code_version="pr-1")
        with ResultStore(current) as store:
            store.record(fake_run_result(), code_version="pr-2")
        assert main(["results", "compare", "tiny", "--db", str(current),
                     "--baseline-db", str(previous)]) == 2
        assert "holds no runs" in capsys.readouterr().err


class TestAcrossMechanismsRejectsGateFlags:
    def test_version_only_flags_are_usage_errors(self, tmp_path, capsys, fake_run_result):
        """--across mechanisms must not silently absorb gate flags: a CI job
        passing --baseline-db or --tolerance would otherwise go no-op green."""
        db = tmp_path / "store.sqlite"
        with ResultStore(db) as store:
            store.record(fake_run_result(), code_version="v1")
            store.record(fake_run_result(mechanism="priority"), code_version="v1")
        for extra in (["--baseline", "v1"], ["--candidate", "v1"],
                      ["--tolerance", "0.1"], ["--baseline-db", str(db)]):
            assert main(["results", "compare", "tiny", "--db", str(db),
                         "--across", "mechanisms", *extra]) == 2
            assert "--across versions" in capsys.readouterr().err


class TestAcrossMechanismsSingleSelection:
    def test_single_name_selection_gets_a_directive_error(
        self, tmp_path, capsys, fake_run_result
    ):
        db = tmp_path / "store.sqlite"
        with ResultStore(db) as store:
            store.record(fake_run_result(), code_version="v1")
            store.record(fake_run_result(mechanism="priority"), code_version="v1")
        assert main(["results", "compare", "tiny", "--db", str(db),
                     "--across", "mechanisms", "--mechanism", "market"]) == 2
        err = capsys.readouterr().err
        assert "comma list" in err
