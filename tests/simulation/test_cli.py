"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.simulation.catalog import default_sweep_names


class TestParser:
    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "smoke", "--auctions", "2", "--seed", "7", "--engine", "batch", "--json"]
        )
        assert (args.scenario, args.auctions, args.seed, args.engine) == ("smoke", 2, 7, "batch")
        assert args.json

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.scenarios == []
        assert not args.all


class TestList:
    def test_table_names_every_scenario(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in default_sweep_names():
            assert name in out

    def test_json_mode(self, capsys):
        assert main(["list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert any(row["name"] == "paper-reference" for row in rows)

    def test_tag_filter(self, capsys):
        assert main(["list", "--tag", "stress", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["name"] for row in rows] == ["10k-bidder-stress"]


class TestRun:
    def test_unknown_scenario_exits_2_with_suggestions(self, capsys):
        assert main(["run", "no-such-economy"]) == 2
        err = capsys.readouterr().err
        assert "paper-reference" in err

    def test_run_smoke_json_report(self, capsys):
        assert main(["run", "smoke", "--workers", "1", "--auctions", "1", "--json"]) == 0
        captured = capsys.readouterr()
        report = json.loads(captured.out)
        assert report["aggregate"]["scenario_count"] == 1
        assert report["scenarios"][0]["scenario"] == "smoke"
        # progress/timing stay on stderr, never in the JSON artifact
        assert "finished in" in captured.err

    def test_out_file(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["run", "smoke", "--workers", "1", "--auctions", "1",
                     "--json", "--out", str(out)]) == 0
        assert json.loads(out.read_text()) == json.loads(capsys.readouterr().out)


class TestSweep:
    def test_explicit_scenario_selection(self, capsys):
        assert main(["sweep", "smoke", "--workers", "1", "--auctions", "1", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert [s["scenario"] for s in report["scenarios"]] == ["smoke"]

    def test_text_report_prints_aggregate_line(self, capsys):
        assert main(["sweep", "smoke", "--workers", "1", "--auctions", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 scenario(s)" in out
        assert "clock rounds per auction" in out

    def test_explicit_names_conflict_with_all(self, capsys):
        assert main(["sweep", "smoke", "--all"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_zero_replicates_rejected(self, capsys):
        assert main(["run", "smoke", "--replicates", "0"]) == 2
        assert "--replicates" in capsys.readouterr().err
