"""Tests for the scenario catalog: registry integrity, presets, overrides."""

import dataclasses

import pytest

from repro.agents.population import PopulationSpec
from repro.cluster.fleet_gen import FleetSpec
from repro.simulation.catalog import (
    SCENARIOS,
    ScenarioSpec,
    default_sweep_names,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.simulation.scenario import ScenarioConfig


def tiny_config(seed: int = 0) -> ScenarioConfig:
    return ScenarioConfig(
        fleet=FleetSpec(cluster_count=2, sites=1, machines_range=(5, 10)),
        population=PopulationSpec(team_count=4),
        seed=seed,
    )


class TestRegistry:
    def test_issue_presets_are_registered(self):
        expected = {
            "paper-reference",
            "congested-fleet",
            "trader-heavy",
            "flash-crowd",
            "idle-fleet-migration",
            "10k-bidder-stress",
            "smoke",
        }
        assert expected <= set(scenario_names())

    def test_default_sweep_excludes_stress_and_has_six(self):
        names = default_sweep_names()
        assert len(names) >= 6
        assert "10k-bidder-stress" not in names
        assert all("stress" not in SCENARIOS[n].tags for n in names)

    def test_unknown_scenario_lists_available(self):
        with pytest.raises(KeyError, match="paper-reference"):
            get_scenario("no-such-economy")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(
                ScenarioSpec(name="smoke", description="dup", config=tiny_config())
            )

    def test_registered_specs_are_well_formed(self):
        # Every preset must carry a description and a valid kebab-case name.
        for name, spec in SCENARIOS.items():
            assert spec.name == name
            assert spec.description
            assert spec.auctions >= 1


class TestScenarioSpec:
    def test_paper_reference_matches_paper_dimensions(self):
        spec = get_scenario("paper-reference")
        # "around 100 bidders and 100 system-level resources" (Section III-C-4)
        assert spec.config.population.team_count == 100
        assert spec.config.fleet.cluster_count * 3 == 102  # pools = clusters x dims
        assert spec.auctions == 6

    def test_stress_scenario_uses_incremental_engine(self):
        spec = get_scenario("10k-bidder-stress")
        assert spec.config.auction_engine == "incremental"
        assert spec.config.population.team_count == 10_000
        assert "stress" in spec.tags

    def test_validation(self):
        with pytest.raises(ValueError, match="kebab-case"):
            ScenarioSpec(name="Bad Name", description="x", config=tiny_config())
        with pytest.raises(ValueError, match="description"):
            ScenarioSpec(name="ok", description="  ", config=tiny_config())
        with pytest.raises(ValueError, match="auctions"):
            ScenarioSpec(name="ok", description="x", config=tiny_config(), auctions=0)
        with pytest.raises(ValueError, match="drift_scale"):
            ScenarioSpec(name="ok", description="x", config=tiny_config(), drift_scale=-1)

    def test_with_overrides_replaces_only_requested_knobs(self):
        spec = get_scenario("smoke")
        out = spec.with_overrides(auctions=1, seed=7, engine="scalar")
        assert (out.auctions, out.config.seed, out.config.auction_engine) == (1, 7, "scalar")
        # untouched knobs survive
        assert out.config.fleet == spec.config.fleet
        assert out.drift_scale == spec.drift_scale
        # original is unchanged (frozen dataclass semantics)
        assert spec.config.seed == 2009

    def test_build_materialises_the_declared_scale(self):
        scenario = get_scenario("smoke").build()
        assert len(scenario.fleet.clusters) == 8
        assert len(scenario.agents) == 24

    def test_summary_is_json_friendly(self):
        import json

        summary = get_scenario("paper-reference").summary()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["teams"] == 100


class TestExperimentConfigBridge:
    def test_paper_scale_is_paper_reference(self):
        from repro.experiments.config import PAPER_SCALE

        assert PAPER_SCALE.scenario_config() == get_scenario("paper-reference").config

    def test_test_scale_is_smoke(self):
        from repro.experiments.config import TEST_SCALE

        assert TEST_SCALE.scenario_config() == get_scenario("smoke").config
        assert TEST_SCALE.auctions == get_scenario("smoke").auctions

    def test_from_scenario_accepts_spec_objects(self):
        from repro.experiments.config import ExperimentConfig

        spec = get_scenario("congested-fleet")
        config = ExperimentConfig.from_scenario(spec)
        assert config.cluster_count == spec.config.fleet.cluster_count
        # base carries knobs the scale fields cannot express
        assert config.scenario_config().fleet.utilization_range == (0.70, 0.97)

    def test_replace_on_derived_config_takes_effect(self):
        from repro.experiments.config import PAPER_SCALE

        scaled = dataclasses.replace(PAPER_SCALE, team_count=10, cluster_count=5)
        config = scaled.scenario_config()
        assert config.population.team_count == 10
        assert config.fleet.cluster_count == 5

    def test_ad_hoc_config_still_builds_without_base(self):
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig(cluster_count=3, team_count=5, seed=1)
        scenario_config = config.scenario_config()
        assert scenario_config.fleet.cluster_count == 3
        assert scenario_config.population.team_count == 5


class TestMechanismField:
    def test_default_mechanism_is_market(self):
        assert get_scenario("paper-reference").mechanism == "market"

    def test_with_overrides_replaces_mechanism(self):
        spec = get_scenario("smoke")
        out = spec.with_overrides(mechanism="fixed-price")
        assert out.mechanism == "fixed-price"
        assert spec.mechanism == "market"  # original untouched
        # other knobs survive the mechanism override
        assert out.config == spec.config and out.auctions == spec.auctions

    def test_invalid_mechanism_name_rejected(self):
        with pytest.raises(ValueError, match="mechanism"):
            ScenarioSpec(
                name="ok", description="x", config=tiny_config(), mechanism="Not Kebab"
            )

    def test_summary_carries_the_mechanism(self):
        spec = get_scenario("smoke").with_overrides(mechanism="proportional")
        assert spec.summary()["mechanism"] == "proportional"

    def test_baseline_cost_estimate_is_discounted(self):
        spec = get_scenario("paper-reference")
        market_cost = spec.cost_estimate()
        baseline_cost = spec.with_overrides(mechanism="priority").cost_estimate()
        assert baseline_cost == pytest.approx(market_cost * ScenarioSpec.BASELINE_COST_FACTOR)

    def test_cost_key_identifies_the_job_shape(self):
        # Scenario + mechanism + engine + auction count: a one-auction smoke
        # of a scenario is a different job than its full run.
        spec = get_scenario("smoke").with_overrides(mechanism="fixed-price")
        assert spec.cost_key() == ("smoke", "fixed-price", "auto", 3)
        assert spec.with_overrides(auctions=1).cost_key() != spec.cost_key()
