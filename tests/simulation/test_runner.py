"""Tests for the parallel economy runner: determinism, streaming, fallback."""

import json

import pytest

from repro.agents.population import PopulationSpec
from repro.cluster.fleet_gen import FleetSpec
from repro.simulation.catalog import ScenarioSpec, get_scenario, scenario_names
from repro.simulation.runner import (
    ParallelRunner,
    ScenarioRunResult,
    SweepReport,
    longest_job_first,
    run_scenario,
)
from repro.simulation.scenario import ScenarioConfig


def tiny_spec(name: str = "tiny", seed: int = 0, auctions: int = 1) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        description="tiny runner-test economy",
        config=ScenarioConfig(
            fleet=FleetSpec(cluster_count=3, sites=1, machines_range=(5, 12)),
            population=PopulationSpec(team_count=6, budget_per_team=100_000.0),
            seed=seed,
        ),
        auctions=auctions,
    )


class TestRunScenario:
    def test_trajectories_have_one_entry_per_auction(self):
        result = run_scenario(tiny_spec(auctions=2))
        assert result.auctions == 2
        assert len(result.median_premium) == 2
        assert len(result.clearing_rounds) == 2
        assert len(result.utilization_spread) == 2
        assert len(result.mean_clearing_price) == 2
        assert len(result.revenue) == 2
        assert len(result.mean_utilization) == 2
        assert result.teams == 6
        assert result.pools == 9  # 3 clusters x 3 resource dimensions

    def test_store_metrics_are_in_the_canonical_report(self):
        payload = run_scenario(tiny_spec()).to_dict()
        assert {"mean_clearing_price", "revenue", "mean_utilization"} <= set(payload)

    def test_result_dict_round_trips_through_json(self):
        result = run_scenario(tiny_spec())
        assert json.loads(json.dumps(result.to_dict())) == result.to_dict()

    def test_same_seed_same_result(self):
        assert run_scenario(tiny_spec(seed=5)) == run_scenario(tiny_spec(seed=5))

    def test_different_seed_different_fleet_outcome(self):
        a = run_scenario(tiny_spec(seed=1))
        b = run_scenario(tiny_spec(seed=2))
        assert a != b


class TestParallelRunner:
    def test_serial_report_order_follows_submission_order(self):
        specs = [tiny_spec("tiny-b", seed=2), tiny_spec("tiny-a", seed=1)]
        report = ParallelRunner(workers=1).run_specs(specs)
        assert [r.scenario for r in report.results] == ["tiny-b", "tiny-a"]

    def test_parallel_report_is_byte_identical_to_serial(self):
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(3)]
        serial = ParallelRunner(workers=1).run_specs(specs)
        parallel = ParallelRunner(workers=2).run_specs(specs)
        assert serial.to_json() == parallel.to_json()

    def test_streaming_callback_sees_every_result(self):
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(3)]
        seen: list[str] = []
        ParallelRunner(workers=2).run_specs(specs, on_result=lambda r: seen.append(r.scenario))
        assert sorted(seen) == ["tiny-0", "tiny-1", "tiny-2"]

    def test_empty_job_list(self):
        report = ParallelRunner(workers=1).run_specs([])
        assert report.results == ()
        assert report.aggregate()["scenario_count"] == 0

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(workers=0)

    def test_replicates_fan_out_over_consecutive_seeds(self):
        report = ParallelRunner(workers=1).run_replicates(tiny_spec(seed=10), 3)
        assert [r.seed for r in report.results] == [10, 11, 12]
        assert len({json.dumps(r.to_dict()) for r in report.results}) == 3

    def test_replicates_keep_one_aggregate_entry_per_seed(self):
        report = ParallelRunner(workers=1).run_replicates(tiny_spec(seed=10), 3)
        drops = report.aggregate()["premium_drop"]
        assert sorted(drops) == ["tiny@seed10", "tiny@seed11", "tiny@seed12"]

    def test_exact_duplicate_jobs_keep_distinct_aggregate_entries(self):
        spec = tiny_spec(seed=10)
        report = ParallelRunner(workers=1).run_specs([spec, spec])
        drops = report.aggregate()["premium_drop"]
        assert sorted(drops) == ["tiny@seed10", "tiny@seed10#2"]

    def test_replicate_count_validated(self):
        with pytest.raises(ValueError):
            ParallelRunner(workers=1).run_replicates(tiny_spec(), 0)

    def test_worker_failure_names_the_scenario(self):
        # The invalid engine only raises once the worker builds the scenario.
        bad = ScenarioSpec(
            name="will-fail",
            description="raises in the worker",
            config=ScenarioConfig(
                fleet=FleetSpec(cluster_count=1, sites=1, machines_range=(5, 6)),
                population=PopulationSpec(team_count=1),
                auction_engine="no-such-engine",
            ),
            auctions=1,
        )
        with pytest.raises(RuntimeError, match="will-fail"):
            ParallelRunner(workers=1).run_specs([bad])


class TestLongestJobFirst:
    def test_full_catalog_submits_stress_before_smoke(self):
        specs = [get_scenario(name) for name in scenario_names()]
        order = longest_job_first(specs)
        names = [specs[i].name for i in order]
        assert names.index("100k-bidder-stress") == 0  # heaviest scenario leads
        assert names.index("10k-bidder-stress") == 1
        assert names.index("10k-bidder-stress") < names.index("smoke")
        assert names[-1] == "smoke"  # lightest scenario trails

    def test_order_is_a_permutation_and_stable_for_ties(self):
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(4)]  # equal costs
        assert longest_job_first(specs) == [0, 1, 2, 3]

    def test_pool_submission_uses_longest_job_first(self, monkeypatch):
        """The pool path hands jobs to the executor in cost order, while the
        report stays in submission order."""
        import repro.exec.process as process_mod
        from concurrent.futures import Future

        submitted: list[str] = []

        class FakeExecutor:
            def __init__(self, max_workers):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, spec):
                submitted.append(spec.name)
                future = Future()
                future.set_result(fn(spec))
                return future

            def shutdown(self, **kwargs):
                pass

        monkeypatch.setattr(process_mod, "ProcessPoolExecutor", FakeExecutor)
        small = tiny_spec("small", seed=1, auctions=1)
        big = tiny_spec("big", seed=2, auctions=3)  # 3x the cost estimate
        report = ParallelRunner(workers=2).run_specs([small, big])
        assert submitted == ["big", "small"]
        assert [r.scenario for r in report.results] == ["small", "big"]


class TestSweepReport:
    def test_canonical_json_is_stable_and_sorted(self):
        report = ParallelRunner(workers=1).run_specs([tiny_spec()])
        payload = report.to_json()
        assert payload == ParallelRunner(workers=1).run_specs([tiny_spec()]).to_json()
        decoded = json.loads(payload)
        assert set(decoded) == {"scenarios", "aggregate"}
        assert decoded["aggregate"]["scenario_count"] == 1

    def test_aggregate_totals(self):
        specs = [tiny_spec("tiny-a", seed=1, auctions=2), tiny_spec("tiny-b", seed=2)]
        report = ParallelRunner(workers=1).run_specs(specs)
        aggregate = report.aggregate()
        assert aggregate["total_auctions"] == 3
        assert set(aggregate["premium_drop"]) == {"tiny-a", "tiny-b"}

    def test_smoke_scenario_runs_from_the_catalog(self):
        spec = get_scenario("smoke").with_overrides(auctions=1)
        report = ParallelRunner(workers=1).run_specs([spec])
        assert report.results[0].scenario == "smoke"
        assert report.results[0].trade_count > 0


class TestMechanismDimension:
    def test_expand_mechanisms_cross_product_is_scenario_major(self):
        from repro.simulation.runner import expand_mechanisms

        specs = [tiny_spec("tiny-a"), tiny_spec("tiny-b")]
        expanded = expand_mechanisms(specs, ["market", "priority"])
        assert [(s.name, s.mechanism) for s in expanded] == [
            ("tiny-a", "market"),
            ("tiny-a", "priority"),
            ("tiny-b", "market"),
            ("tiny-b", "priority"),
        ]

    def test_expand_mechanisms_requires_names(self):
        from repro.simulation.runner import expand_mechanisms

        with pytest.raises(ValueError):
            expand_mechanisms([tiny_spec()], [])

    def test_mixed_mechanism_keys_disambiguate_by_mechanism(self):
        from repro.simulation.runner import expand_mechanisms

        specs = expand_mechanisms([tiny_spec()], ["market", "priority"])
        report = ParallelRunner(workers=1).run_specs(specs)
        drops = report.aggregate()["premium_drop"]
        assert sorted(drops) == ["tiny+market", "tiny+priority"]

    def test_single_mechanism_keys_are_unchanged(self):
        # Market-only sweeps must keep their historical aggregate keys.
        report = ParallelRunner(workers=1).run_replicates(tiny_spec(seed=10), 2)
        assert sorted(report.aggregate()["premium_drop"]) == [
            "tiny@seed10",
            "tiny@seed11",
        ]

    def test_mechanism_and_replicates_compose_in_keys(self):
        from repro.simulation.runner import expand_mechanisms

        specs = [
            s.with_overrides(seed=s.config.seed + i)
            for s in expand_mechanisms([tiny_spec(seed=10)], ["market", "priority"])
            for i in range(2)
        ]
        report = ParallelRunner(workers=1).run_specs(specs)
        assert sorted(report.aggregate()["premium_drop"]) == [
            "tiny+market@seed10",
            "tiny+market@seed11",
            "tiny+priority@seed10",
            "tiny+priority@seed11",
        ]


class TestWallTimes:
    def test_run_scenario_stamps_a_wall_time(self):
        result = run_scenario(tiny_spec())
        assert result.wall_time_seconds is not None and result.wall_time_seconds > 0

    def test_wall_time_stays_out_of_the_canonical_report(self):
        result = run_scenario(tiny_spec())
        assert "wall_time" not in json.dumps(result.to_dict())

    def test_wall_time_is_excluded_from_equality(self):
        import dataclasses

        a = run_scenario(tiny_spec(seed=5))
        assert dataclasses.replace(a, wall_time_seconds=99.0) == a


class TestMeasuredCostScheduling:
    def test_job_costs_prefer_measured_wall_times(self):
        from repro.simulation.runner import job_costs

        small = tiny_spec("small", auctions=1)
        big = tiny_spec("big", auctions=3)
        measured = {small.cost_key(): 60.0, big.cost_key(): 1.0}
        assert job_costs([small, big], measured) == [60.0, 1.0]

    def test_unmeasured_jobs_are_rescaled_into_seconds(self):
        from repro.simulation.runner import job_costs

        measured_spec = tiny_spec("known", auctions=2)
        unknown = tiny_spec("unknown", auctions=4)  # 2x the static estimate
        measured = {measured_spec.cost_key(): 10.0}
        costs = job_costs([measured_spec, unknown], measured)
        assert costs[0] == 10.0
        # unknown's estimate is scaled by known's seconds-per-unit ratio: 2x
        assert costs[1] == pytest.approx(20.0)

    def test_no_measurements_falls_back_to_static_estimates(self):
        from repro.simulation.runner import job_costs

        specs = [tiny_spec("a", auctions=1), tiny_spec("b", auctions=2)]
        assert job_costs(specs, {}) == [s.cost_estimate() for s in specs]

    def test_longest_job_first_flips_under_measured_costs(self):
        small = tiny_spec("small", auctions=1)
        big = tiny_spec("big", auctions=3)
        assert longest_job_first([small, big]) == [1, 0]
        measured = {small.cost_key(): 60.0, big.cost_key(): 1.0}
        assert longest_job_first([small, big], measured) == [0, 1]

    def test_measurements_of_a_different_job_shape_are_ignored(self):
        # A one-auction smoke of a heavy scenario must not stand in for the
        # full job's cost: the cost key includes engine and auction count.
        from repro.simulation.runner import job_costs

        full = tiny_spec("heavy", auctions=3)
        smoke_of_it = full.with_overrides(auctions=1)
        measured = {smoke_of_it.cost_key(): 0.001}  # fast because it is tiny
        assert job_costs([full], measured) == [full.cost_estimate()]

    def test_pool_submission_prefers_store_measurements(self, monkeypatch, tmp_path):
        """A store with observed wall times reorders pool submission."""
        import repro.exec.process as process_mod
        from concurrent.futures import Future
        from repro.results.store import ResultStore

        submitted: list[str] = []

        class FakeExecutor:
            def __init__(self, max_workers):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, spec):
                submitted.append(spec.name)
                future = Future()
                future.set_result(fn(spec))
                return future

            def shutdown(self, **kwargs):
                pass

        monkeypatch.setattr(process_mod, "ProcessPoolExecutor", FakeExecutor)
        small = tiny_spec("small", seed=1, auctions=1)
        big = tiny_spec("big", seed=2, auctions=3)
        with ResultStore(tmp_path / "measured.sqlite") as store:
            # Seed observed costs that contradict the static estimates.
            import dataclasses

            store.record(
                dataclasses.replace(run_scenario(small), wall_time_seconds=60.0),
                code_version="v0",
            )
            store.record(
                dataclasses.replace(run_scenario(big), wall_time_seconds=1.0),
                code_version="v0",
            )
            ParallelRunner(workers=2).run_specs([small, big], store=store)
        assert submitted == ["small", "big"]  # measured order, not estimate order
