"""Tests for the remote execution fabric: dispatch, failure, and determinism.

Workers here are real protocol speakers — either :func:`repro.exec.run_worker`
running in a thread (full daemon loop, heartbeats and all) or hand-scripted
sockets for the adversarial cases (a worker that dies mid-job, a duplicate
id, a capacity probe).  Everything runs on localhost ephemeral ports.
"""

import socket
import threading
import time

import pytest

from repro.agents.population import PopulationSpec
from repro.cluster.fleet_gen import FleetSpec
from repro.exec import RemoteBackend, WorkerError, run_worker
from repro.exec.wire import recv_message, send_message
from repro.exec.worker import parse_hostport
from repro.simulation.catalog import ScenarioSpec
from repro.simulation.runner import ParallelRunner
from repro.simulation.scenario import ScenarioConfig


def tiny_spec(name: str = "tiny", seed: int = 0, auctions: int = 1) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        description="tiny remote-test economy",
        config=ScenarioConfig(
            fleet=FleetSpec(cluster_count=2, sites=1, machines_range=(5, 10)),
            population=PopulationSpec(team_count=4, budget_per_team=100_000.0),
            seed=seed,
        ),
        auctions=auctions,
    )


def backend_on_ephemeral_port(**kwargs) -> tuple[RemoteBackend, str]:
    options = dict(bind="127.0.0.1:0", quiet=True, wait_timeout=10.0)
    options.update(kwargs)
    backend = RemoteBackend(**options)
    return backend, backend.listen()


def start_worker(address: str, worker_id: str, **kwargs) -> threading.Thread:
    thread = threading.Thread(
        target=run_worker,
        args=(address,),
        kwargs=dict(worker_id=worker_id, retry_seconds=5.0, **kwargs),
        daemon=True,
    )
    thread.start()
    return thread


class TestRemoteHappyPath:
    def test_report_byte_identical_to_serial_with_two_workers(self):
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(4)]
        backend, address = backend_on_ephemeral_port(workers=2)
        threads = [start_worker(address, f"w{i}") for i in range(2)]
        remote = ParallelRunner(backend=backend).run_specs(specs)
        serial = ParallelRunner(workers=1).run_specs(specs)
        assert remote.to_json() == serial.to_json()
        for thread in threads:
            thread.join(timeout=5)
        workers_used = {r.worker for r in remote.results}
        assert workers_used <= {"w0", "w1"}
        assert len(workers_used) == 2  # both workers actually served jobs

    def test_store_records_remote_worker_provenance(self, tmp_path):
        from repro.results.store import ResultStore

        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(2)]
        backend, address = backend_on_ephemeral_port()
        start_worker(address, "prov-worker")
        with ResultStore(tmp_path / "remote.sqlite") as store:
            ParallelRunner(backend=backend).run_specs(
                specs, store=store, code_version="vtest"
            )
            assert {run.worker for run in store.runs()} == {"prov-worker"}

    def test_late_joining_worker_gets_jobs(self):
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(3)]
        backend, address = backend_on_ephemeral_port(workers=1)
        start_worker(address, "early")

        def join_late():
            time.sleep(0.3)
            try:
                run_worker(address, worker_id="late", retry_seconds=5.0)
            except WorkerError:
                pass  # the sweep may already be over; "early" did all the jobs

        late = threading.Thread(target=join_late, daemon=True)
        late.start()
        report = ParallelRunner(backend=backend).run_specs(specs)
        late.join(timeout=5)
        assert len(report.results) == 3  # all jobs done whoever served them

    def test_no_workers_raises_with_instructions(self):
        backend, _ = backend_on_ephemeral_port(wait_timeout=0.3)
        with pytest.raises(RuntimeError, match="python -m repro worker"):
            backend.execute([tiny_spec()], order=[0], emit=lambda i, r: None)


class TestWorkerLoss:
    def test_worker_killed_mid_job_is_retried_elsewhere(self):
        """A worker that takes a job and vanishes forfeits it to another
        worker; the report stays byte-identical to a serial run."""
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(3)]
        backend, address = backend_on_ephemeral_port(workers=2)

        took_job = threading.Event()

        def saboteur():
            host, port = parse_hostport(address)
            sock = socket.create_connection((host, port))
            send_message(
                sock, {"type": "hello", "worker": "doomed", "capacity": 1, "pid": 0}
            )
            assert recv_message(sock)["type"] == "welcome"
            while True:  # take the first job, then die without a word
                message = recv_message(sock)
                if message is not None and message["type"] == "job":
                    took_job.set()
                    sock.close()
                    return

        threading.Thread(target=saboteur, daemon=True).start()
        survivor = start_worker(address, "survivor")
        remote = ParallelRunner(backend=backend).run_specs(specs)
        serial = ParallelRunner(workers=1).run_specs(specs)
        survivor.join(timeout=5)

        assert took_job.is_set(), "the doomed worker never received a job"
        assert remote.to_json() == serial.to_json()
        # Every job ultimately ran on the surviving worker.
        assert {r.worker for r in remote.results} == {"survivor"}

    def test_heartbeats_during_the_wait_phase_keep_workers_alive(self):
        """A worker that connects long before dispatch begins (the
        coordinator still waiting for more workers) must not be declared
        lost on the first liveness check: heartbeats received during the
        wait phase count."""
        backend, address = backend_on_ephemeral_port(
            workers=2,  # only one will show up
            wait_timeout=1.0,
            heartbeat_timeout=0.4,  # shorter than the wait phase
        )
        start_worker(address, "patient", heartbeat_interval=0.1)
        report = ParallelRunner(backend=backend).run_specs([tiny_spec()])
        assert [r.worker for r in report.results] == ["patient"]

    def test_wait_phase_refreshes_last_seen_from_heartbeats(self):
        """Unit view of the same guarantee: heartbeat events drained while
        waiting for more workers must advance the sender's ``last_seen``
        (a dropped-on-the-floor heartbeat would leave a stale timestamp
        and get a healthy worker killed at dispatch)."""
        import socket as socket_mod

        from repro.exec.coordinator import _Worker

        backend, _ = backend_on_ephemeral_port(workers=2, wait_timeout=0.5)
        try:
            a, b = socket_mod.socketpair()
            stale = time.monotonic() - 60.0
            worker = _Worker(
                worker_id="early", sock=a, capacity=1, joined_at=stale, last_seen=stale
            )
            backend._workers["early"] = worker
            backend._events.put(("msg", "early", {"type": "heartbeat"}))
            backend._wait_for_workers()  # times out waiting for a second worker
            assert worker.last_seen > stale, (
                "a heartbeat drained during the wait phase must refresh last_seen"
            )
            b.close()
        finally:
            backend.close()

    def test_silent_worker_is_declared_lost_by_heartbeat(self):
        """A worker that stops heartbeating (but keeps the socket open) is
        timed out and its job re-run elsewhere."""
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(2)]
        backend, address = backend_on_ephemeral_port(
            workers=2, heartbeat_timeout=1.0
        )

        def zombie():
            host, port = parse_hostport(address)
            sock = socket.create_connection((host, port))
            send_message(
                sock, {"type": "hello", "worker": "zombie", "capacity": 1, "pid": 0}
            )
            assert recv_message(sock)["type"] == "welcome"
            # Accept a job, never respond, never heartbeat; hold the socket
            # open until the sweep finishes without us.
            recv_message(sock)
            time.sleep(10)
            sock.close()

        threading.Thread(target=zombie, daemon=True).start()
        start_worker(address, "healthy")
        report = ParallelRunner(backend=backend).run_specs(specs)
        assert {r.worker for r in report.results} == {"healthy"}


class TestHandshake:
    def test_duplicate_worker_id_refused(self):
        backend, address = backend_on_ephemeral_port()
        first = start_worker(address, "twin")
        time.sleep(0.3)  # let the first twin register
        with pytest.raises(WorkerError, match="already connected"):
            run_worker(address, worker_id="twin", retry_seconds=5.0)
        backend.close()  # shuts the first twin down cleanly
        first.join(timeout=5)

    def test_malformed_hello_rejected(self):
        backend, address = backend_on_ephemeral_port()
        host, port = parse_hostport(address)
        sock = socket.create_connection((host, port))
        send_message(sock, {"type": "heartbeat"})  # not a hello
        answer = recv_message(sock)
        assert answer["type"] == "reject"
        sock.close()
        backend.close()

    def test_worker_with_no_coordinator_gives_up(self):
        with pytest.raises(WorkerError, match="no coordinator"):
            run_worker("127.0.0.1:1", worker_id="orphan", retry_seconds=0.3)


class TestDispatchPolicy:
    def test_in_flight_cap_respects_worker_capacity(self):
        """A capacity-2 worker is pipelined exactly two jobs before it
        answers anything; the third only arrives after a result frees a slot."""
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(3)]
        backend, address = backend_on_ephemeral_port()
        seen: list[int] = []
        failures: list[str] = []

        def scripted_worker():
            from repro.exec.serial import run_one
            from repro.exec.wire import decode_spec_b64, result_to_wire

            host, port = parse_hostport(address)
            sock = socket.create_connection((host, port))
            send_message(
                sock, {"type": "hello", "worker": "cap2", "capacity": 2, "pid": 0}
            )
            assert recv_message(sock)["type"] == "welcome"
            first = recv_message(sock)
            second = recv_message(sock)
            seen.extend([first["job"], second["job"]])
            sock.settimeout(0.5)
            try:
                third = recv_message(sock)
                failures.append(f"cap exceeded: got job {third!r} with 2 in flight")
                return
            except TimeoutError:
                pass  # correct: the cap held
            sock.settimeout(None)
            for message in (first, second):
                result = run_one(decode_spec_b64(message["spec"]), worker="cap2")
                send_message(
                    sock, {"type": "result", "job": message["job"], **result_to_wire(result)}
                )
            third = recv_message(sock)
            assert third["type"] == "job"
            seen.append(third["job"])
            result = run_one(decode_spec_b64(third["spec"]), worker="cap2")
            send_message(
                sock, {"type": "result", "job": third["job"], **result_to_wire(result)}
            )
            assert recv_message(sock)["type"] == "shutdown"
            sock.close()

        thread = threading.Thread(target=scripted_worker, daemon=True)
        thread.start()
        report = ParallelRunner(backend=backend).run_specs(specs)
        thread.join(timeout=10)
        assert not failures, failures[0]
        assert sorted(seen) == [0, 1, 2]
        assert len(report.results) == 3

    def test_max_in_flight_caps_advertised_capacity(self):
        backend, address = backend_on_ephemeral_port(max_in_flight=1)
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(2)]

        def scripted_worker():
            from repro.exec.serial import run_one
            from repro.exec.wire import decode_spec_b64, result_to_wire

            host, port = parse_hostport(address)
            sock = socket.create_connection((host, port))
            # Advertise a huge capacity; the coordinator must still send one
            # job at a time because of its own cap.
            send_message(
                sock, {"type": "hello", "worker": "greedy", "capacity": 99, "pid": 0}
            )
            assert recv_message(sock)["type"] == "welcome"
            first = recv_message(sock)
            sock.settimeout(0.5)
            try:
                recv_message(sock)
                raise AssertionError("second job arrived despite max_in_flight=1")
            except TimeoutError:
                pass
            sock.settimeout(None)
            while first is not None and first["type"] == "job":
                result = run_one(decode_spec_b64(first["spec"]), worker="greedy")
                send_message(
                    sock, {"type": "result", "job": first["job"], **result_to_wire(result)}
                )
                first = recv_message(sock)
            sock.close()

        thread = threading.Thread(target=scripted_worker, daemon=True)
        thread.start()
        report = ParallelRunner(backend=backend).run_specs(specs)
        thread.join(timeout=10)
        assert len(report.results) == 2


class TestScenarioFailure:
    def test_scenario_error_aborts_and_names_the_scenario(self):
        bad = ScenarioSpec(
            name="will-fail",
            description="raises on the worker",
            config=ScenarioConfig(
                fleet=FleetSpec(cluster_count=1, sites=1, machines_range=(5, 6)),
                population=PopulationSpec(team_count=1),
                auction_engine="no-such-engine",
            ),
            auctions=1,
        )
        backend, address = backend_on_ephemeral_port()
        thread = start_worker(address, "victim")
        with pytest.raises(RuntimeError, match="will-fail"):
            ParallelRunner(backend=backend).run_specs([bad])
        thread.join(timeout=5)  # the abort still sends a clean shutdown
