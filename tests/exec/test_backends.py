"""Tests for the execution-backend registry and the serial/process backends."""

import pytest

from repro.agents.population import PopulationSpec
from repro.cluster.fleet_gen import FleetSpec
from repro.exec import (
    DEFAULT_BACKEND,
    ProcessBackend,
    SerialBackend,
    backend_names,
    backend_summaries,
    create_backend,
    get_backend_factory,
    register_backend,
)
from repro.simulation.catalog import ScenarioSpec
from repro.simulation.runner import ParallelRunner, longest_job_first, run_scenario
from repro.simulation.scenario import ScenarioConfig


def tiny_spec(name: str = "tiny", seed: int = 0, auctions: int = 1) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        description="tiny backend-test economy",
        config=ScenarioConfig(
            fleet=FleetSpec(cluster_count=3, sites=1, machines_range=(5, 12)),
            population=PopulationSpec(team_count=6, budget_per_team=100_000.0),
            seed=seed,
        ),
        auctions=auctions,
    )


def execute(backend, specs):
    """Run specs through a backend directly, returning submission-order results."""
    results = [None] * len(specs)

    def emit(i, result):
        assert results[i] is None, f"emit fired twice for slot {i}"
        results[i] = result

    backend.execute(specs, order=longest_job_first(specs), emit=emit)
    return results


def canonical(results):
    """Canonical JSON per result (NaN-tolerant equality across runs)."""
    import json

    return [json.dumps(r.to_dict(), sort_keys=True) for r in results]


class TestRegistry:
    def test_all_three_backends_registered(self):
        assert backend_names() == ["serial", "process", "remote"]
        assert DEFAULT_BACKEND == "process"

    def test_lookup_returns_named_backend(self):
        for name in backend_names():
            assert get_backend_factory(name).name == name

    def test_unknown_backend_lists_available(self):
        with pytest.raises(KeyError, match="serial"):
            get_backend_factory("no-such-backend")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(SerialBackend)

    def test_create_backend_forwards_options(self):
        assert create_backend("process", workers=3).workers == 3

    def test_summaries_cover_every_backend(self):
        rows = backend_summaries()
        assert [row["name"] for row in rows] == backend_names()
        assert all(row["description"].strip() for row in rows)


class TestSerialBackend:
    def test_results_match_run_scenario(self):
        specs = [tiny_spec("tiny-a", seed=1), tiny_spec("tiny-b", seed=2)]
        results = execute(SerialBackend(), specs)
        assert canonical(results) == canonical(run_scenario(s) for s in specs)

    def test_worker_provenance_stamped(self):
        (result,) = execute(SerialBackend(), [tiny_spec()])
        assert result.worker.startswith("serial:")

    def test_scenario_failure_names_the_scenario(self):
        bad = ScenarioSpec(
            name="will-fail",
            description="raises in the backend",
            config=ScenarioConfig(
                fleet=FleetSpec(cluster_count=1, sites=1, machines_range=(5, 6)),
                population=PopulationSpec(team_count=1),
                auction_engine="no-such-engine",
            ),
            auctions=1,
        )
        with pytest.raises(RuntimeError, match="will-fail"):
            execute(SerialBackend(), [bad])


class TestProcessBackend:
    def test_report_matches_serial(self):
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(3)]
        serial = execute(SerialBackend(), specs)
        pooled = execute(ProcessBackend(workers=2), specs)
        assert canonical(serial) == canonical(pooled)

    def test_single_worker_runs_in_process(self):
        (result,) = execute(ProcessBackend(workers=1), [tiny_spec()])
        assert result.worker.startswith("serial:")

    def test_pool_workers_stamp_their_pid(self):
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(2)]
        results = execute(ProcessBackend(workers=2), specs)
        # Either real pool pids, or the serial fallback in sandboxes that
        # forbid subprocesses — both are valid provenance.
        assert all(
            r.worker.startswith("process:") or r.worker.startswith("serial:")
            for r in results
        )

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ProcessBackend(workers=0)

    def test_pool_unavailable_falls_back_to_serial(self, monkeypatch):
        import repro.exec.process as process_mod

        class NoPool:
            def __init__(self, max_workers):
                raise OSError("no subprocesses here")

        monkeypatch.setattr(process_mod, "ProcessPoolExecutor", NoPool)
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(2)]
        results = execute(ProcessBackend(workers=2), specs)
        assert [r.scenario for r in results] == ["tiny-0", "tiny-1"]
        assert all(r.worker.startswith("serial:") for r in results)


class TestRunnerDelegation:
    def test_backend_name_is_honoured(self):
        specs = [tiny_spec("tiny-a", seed=1)]
        report = ParallelRunner(backend="serial").run_specs(specs)
        assert report.results[0].worker.startswith("serial:")

    def test_backend_instance_is_honoured(self):
        specs = [tiny_spec("tiny-a", seed=1)]
        report = ParallelRunner(backend=SerialBackend()).run_specs(specs)
        assert report.results[0].worker.startswith("serial:")

    def test_unknown_backend_name_raises(self):
        with pytest.raises(KeyError, match="available"):
            ParallelRunner(backend="bogus").run_specs([tiny_spec()])

    def test_reports_byte_identical_across_backends(self):
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(3)]
        payloads = {
            name: ParallelRunner(backend=name, workers=2).run_specs(specs).to_json()
            for name in ("serial", "process")
        }
        assert payloads["serial"] == payloads["process"]
