"""Tests for the remote fabric's wire format: framing, codecs, addresses."""

import json
import socket

import pytest

from repro.exec.wire import (
    MAX_FRAME_BYTES,
    WireError,
    decode_spec_b64,
    encode_spec_b64,
    recv_message,
    result_from_wire,
    result_to_wire,
    send_message,
)
from repro.exec.worker import parse_hostport


@pytest.fixture
def sock_pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_round_trip(self, sock_pair):
        a, b = sock_pair
        send_message(a, {"type": "hello", "worker": "w1", "capacity": 2})
        assert recv_message(b) == {"type": "hello", "worker": "w1", "capacity": 2}

    def test_multiple_frames_stay_separate(self, sock_pair):
        a, b = sock_pair
        for i in range(3):
            send_message(a, {"type": "job", "job": i})
        assert [recv_message(b)["job"] for _ in range(3)] == [0, 1, 2]

    def test_clean_eof_returns_none(self, sock_pair):
        a, b = sock_pair
        a.close()
        assert recv_message(b) is None

    def test_eof_mid_frame_raises(self, sock_pair):
        a, b = sock_pair
        a.sendall(b"\x00\x00\x00\x10incomplete")
        a.close()
        with pytest.raises(WireError, match="closed"):
            recv_message(b)

    def test_oversized_frame_rejected(self, sock_pair):
        a, b = sock_pair
        a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(WireError, match="cap"):
            recv_message(b)

    def test_untyped_frame_rejected(self, sock_pair):
        a, b = sock_pair
        payload = json.dumps({"no": "type"}).encode()
        a.sendall(len(payload).to_bytes(4, "big") + payload)
        with pytest.raises(WireError, match="typed"):
            recv_message(b)

    def test_undecodable_frame_rejected(self, sock_pair):
        a, b = sock_pair
        a.sendall(b"\x00\x00\x00\x03not")
        with pytest.raises(WireError, match="undecodable"):
            recv_message(b)


class TestSpecCodec:
    def test_spec_round_trips_through_b64_pickle(self):
        from repro.simulation.catalog import get_scenario

        spec = get_scenario("smoke").with_overrides(auctions=2, seed=7)
        assert decode_spec_b64(encode_spec_b64(spec)) == spec


class TestResultCodec:
    def test_result_round_trips_bit_exactly(self, fake_run_result):
        result = fake_run_result(wall_time_seconds=1.5)
        import dataclasses

        result = dataclasses.replace(result, worker="w9")
        message = json.loads(json.dumps(result_to_wire(result)))  # over the wire
        rebuilt = result_from_wire(message)
        assert rebuilt == result
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.wall_time_seconds == 1.5
        assert rebuilt.worker == "w9"

    def test_real_run_round_trips(self):
        from repro.simulation.catalog import get_scenario
        from repro.simulation.runner import run_scenario

        result = run_scenario(get_scenario("smoke").with_overrides(auctions=1))
        message = json.loads(json.dumps(result_to_wire(result)))
        assert result_from_wire(message).to_dict() == result.to_dict()


class TestParseHostport:
    def test_accepts_host_and_port(self):
        assert parse_hostport("10.0.0.3:9999") == ("10.0.0.3", 9999)

    def test_empty_host_defaults_to_localhost(self):
        assert parse_hostport(":7077") == ("127.0.0.1", 7077)

    @pytest.mark.parametrize("bad", ["nohost", "host:", "host:port", "7077"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_hostport(bad)
