"""Deterministic fault injection for the remote execution fabric.

The fabric routes every frame through a :class:`repro.exec.wire.Transport`,
and that seam is where this harness lives: :class:`ChaosTransport` wraps the
real wire layer and perturbs it at **scripted points** — drop a frame, delay
it, duplicate it, or kill the connection outright — so failure tests replay
the exact same misbehaviour every run, no sleeps-and-hope, no flakes.

A script is a list of :class:`ChaosEvent` rules.  Each rule names a
direction (``send``/``recv``), a frame type (``None`` matches any frame),
the 1-based occurrence of that frame this transport will see, and an action:

``drop``
    The frame silently never crosses the wire (a sent frame is discarded, a
    received frame is swallowed and the next one returned).
``delay``
    The frame arrives late by ``delay`` seconds.
``dup``
    The frame is sent twice back to back (send direction only).
``kill``
    The connection dies *at this frame*: the socket is closed (the peer sees
    EOF, exactly like a crashed process) and :class:`ChaosKill` is raised
    locally.  ``ChaosKill`` subclasses :class:`OSError`, so every existing
    link-failure path — worker redial loops, coordinator loss handling —
    treats an injected kill identically to a real one.

Determinism and recoverability
------------------------------

Counters are per-transport, so give each worker its own instance and the
script replays identically regardless of thread scheduling.  For a sweep
report to stay byte-identical under injection, every scripted failure must
be one the fabric is *designed* to recover from:

* dropped **heartbeats** (the loss timeout just must outlast the test),
* **delays** on any frame,
* **duplicated results** (the coordinator dedups against its job queue),
* **kills** anywhere (a daemon worker redials; the coordinator requeues the
  forfeited jobs).

Dropping a *result* without killing the connection is the one scripted lie
the fabric cannot see through — the worker keeps heartbeating, the
coordinator keeps waiting — so :meth:`ChaosTransport.seeded` never generates
it (and hand-written scripts should not either, unless the test *wants* a
stall).  See ``docs/testing.md`` for the cookbook.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.exec.wire import Transport, recv_message, send_message


class ChaosKill(OSError):
    """An injected connection death; indistinguishable from a real one."""


@dataclass(frozen=True)
class ChaosEvent:
    """One scripted perturbation: the Nth DIRECTION frame of TYPE gets ACTION."""

    direction: str  # "send" or "recv"
    message_type: str | None  # frame type, or None to match any frame
    occurrence: int  # 1-based match count at which to fire
    action: str  # "drop" | "delay" | "dup" | "kill"
    delay: float = 0.05  # seconds, for the "delay" action

    def __post_init__(self):
        if self.direction not in ("send", "recv"):
            raise ValueError(f"direction must be send/recv, not {self.direction!r}")
        if self.action not in ("drop", "delay", "dup", "kill"):
            raise ValueError(f"unknown chaos action {self.action!r}")
        if self.occurrence < 1:
            raise ValueError("occurrence is 1-based")


@dataclass
class ChaosLogEntry:
    """What actually fired, for post-mortem assertions in tests."""

    direction: str
    message_type: str
    action: str


class ChaosTransport(Transport):
    """A wire transport that injects scripted faults (see the module docs).

    One instance per connection/worker: occurrence counters are internal, so
    sharing an instance across sockets would interleave their counts
    nondeterministically.
    """

    def __init__(self, schedule: list[ChaosEvent] = (), *, name: str = "chaos"):
        self.name = name
        self.schedule = list(schedule)
        self.log: list[ChaosLogEntry] = []
        self._counts: dict[tuple[str, str | None], int] = {}
        self._lock = threading.Lock()

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        kills: int = 1,
        heartbeat_drops: int = 2,
        delays: int = 2,
        result_dups: int = 1,
        max_delay: float = 0.05,
        name: str = "chaos",
    ) -> "ChaosTransport":
        """A deterministic random script built only from recoverable faults.

        The same seed always yields the same schedule.  Kills land on early
        job receipts (a worker dying mid-job), drops eat heartbeat sends,
        delays smear over any frame, and duplicates re-send results — every
        one a failure mode the fabric recovers from, so a sweep under this
        script must still produce byte-identical reports.
        """
        rng = random.Random(seed)
        schedule = [
            ChaosEvent("recv", "job", rng.randint(1, 3), "kill")
            for _ in range(kills)
        ]
        schedule += [
            ChaosEvent("send", "heartbeat", rng.randint(1, 6), "drop")
            for _ in range(heartbeat_drops)
        ]
        schedule += [
            ChaosEvent(
                rng.choice(("send", "recv")),
                None,
                rng.randint(1, 8),
                "delay",
                delay=rng.uniform(0.005, max_delay),
            )
            for _ in range(delays)
        ]
        schedule += [
            ChaosEvent("send", "result", rng.randint(1, 2), "dup")
            for _ in range(result_dups)
        ]
        return cls(schedule, name=name)

    # -- the Transport contract --------------------------------------------------------
    def send(self, sock, message: dict) -> None:
        for event in self._fired("send", message["type"]):
            if event.action == "drop":
                return  # the frame never leaves
            if event.action == "delay":
                time.sleep(event.delay)
            elif event.action == "dup":
                send_message(sock, message)  # once here, once below
            elif event.action == "kill":
                sock.close()  # the peer sees EOF, like a crashed process
                raise ChaosKill(f"{self.name}: scripted kill on send({message['type']})")
        send_message(sock, message)

    def recv(self, sock) -> dict | None:
        message = recv_message(sock)
        if message is None:
            return None
        for event in self._fired("recv", message["type"]):
            if event.action == "drop":
                return self.recv(sock)  # swallow this frame, serve the next
            if event.action == "delay":
                time.sleep(event.delay)
            elif event.action == "kill":
                sock.close()
                raise ChaosKill(f"{self.name}: scripted kill on recv({message['type']})")
        return message

    # -- bookkeeping -------------------------------------------------------------------
    def _fired(self, direction: str, message_type: str) -> list[ChaosEvent]:
        """Advance the frame counters and return every rule that fires now."""
        with self._lock:
            for key in ((direction, message_type), (direction, None)):
                self._counts[key] = self._counts.get(key, 0) + 1
            fired = [
                event
                for event in self.schedule
                if event.direction == direction
                and event.message_type in (message_type, None)
                and self._counts.get((direction, event.message_type), 0)
                == event.occurrence
            ]
            for event in fired:
                self.log.append(ChaosLogEntry(direction, message_type, event.action))
            return fired

    def fired_actions(self) -> list[str]:
        """The actions that actually fired, in order (test assertions)."""
        return [entry.action for entry in self.log]