"""Deterministic fault-injection tests for the persistent worker fleet.

Every test here scripts its failures through :class:`chaos.ChaosTransport`
— kills at exact frames, dropped heartbeats, delayed and duplicated frames —
and then demands the strongest possible outcome: the sweep report is
**byte-identical** to a run on the in-process backend, and (for the
persistent fleet) the workers are still standing afterwards.

The flagship test is the ISSUE acceptance scenario: a sweep against a
persistent two-worker fleet with scripted mid-job worker kills and delayed
heartbeats produces a report byte-identical to ``--backend process``, and
``repro workers list`` shows the surviving fleet afterward.
"""

import socket
import time

import pytest

from chaos import ChaosEvent, ChaosKill, ChaosTransport
from repro.exec import ControlClient
from repro.simulation.runner import ParallelRunner
from test_control import wait_for
from test_remote import backend_on_ephemeral_port, start_worker, tiny_spec

# Millisecond-scale timings (satellite: heartbeat knobs are parameters now).
FAST_HEARTBEAT = 0.05
# Generous relative to the scripted heartbeat drops: even a few eaten beats
# in a row leave the worker well inside the loss timeout.
LOSS_TIMEOUT = 2.0
# A killed daemon must not redial before the coordinator has processed the
# loss event, or it would be bounced as a duplicate id.
REDIAL_DELAY = 0.5


def chaos_worker(address: str, worker_id: str, transport: ChaosTransport, **kwargs):
    import threading

    from repro.exec import WorkerError, run_worker

    def serve():
        try:
            run_worker(
                address,
                worker_id=worker_id,
                retry_seconds=5.0,
                daemon=True,
                transport=transport,
                heartbeat_interval=FAST_HEARTBEAT,
                reconnect_delay=REDIAL_DELAY,
                **kwargs,
            )
        except WorkerError:
            # A daemon that was mid-redial when the test tore the
            # coordinator down dials a dead port and gives up — expected.
            pass

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return thread


class TestChaosTransportUnit:
    """The harness itself, exercised over a bare socketpair."""

    def frames_through(self, transport, messages):
        """Push ``messages`` through ``transport.send`` and collect what the
        peer actually receives."""
        from repro.exec.wire import recv_message

        left, right = socket.socketpair()
        try:
            for message in messages:
                try:
                    transport.send(left, message)
                except ChaosKill:
                    break
            left.close()
            received = []
            while (frame := recv_message(right)) is not None:
                received.append(frame)
            return received
        finally:
            right.close()

    def test_drop_swallows_exactly_the_scripted_frame(self):
        transport = ChaosTransport([ChaosEvent("send", "heartbeat", 2, "drop")])
        received = self.frames_through(
            transport, [{"type": "heartbeat", "n": i} for i in range(1, 4)]
        )
        assert [f["n"] for f in received] == [1, 3]

    def test_dup_sends_the_frame_twice(self):
        transport = ChaosTransport([ChaosEvent("send", "result", 1, "dup")])
        received = self.frames_through(transport, [{"type": "result", "job": 7}])
        assert received == [{"type": "result", "job": 7}] * 2

    def test_kill_closes_the_socket_and_raises_oserror(self):
        transport = ChaosTransport([ChaosEvent("send", "result", 1, "kill")])
        received = self.frames_through(transport, [{"type": "result", "job": 0}])
        assert received == []  # the peer saw EOF, never the frame
        assert isinstance(ChaosKill("x"), OSError)  # rides existing loss paths

    def test_recv_drop_serves_the_next_frame_instead(self):
        from repro.exec.wire import send_message

        left, right = socket.socketpair()
        try:
            send_message(left, {"type": "heartbeat"})
            send_message(left, {"type": "job", "job": 1})
            transport = ChaosTransport([ChaosEvent("recv", "heartbeat", 1, "drop")])
            assert transport.recv(right)["type"] == "job"
        finally:
            left.close()
            right.close()

    def test_occurrence_counters_are_per_frame_type(self):
        transport = ChaosTransport([ChaosEvent("send", "result", 1, "drop")])
        received = self.frames_through(
            transport,
            [{"type": "heartbeat"}, {"type": "heartbeat"}, {"type": "result"}],
        )
        # The two heartbeats never advanced the result counter.
        assert [f["type"] for f in received] == ["heartbeat", "heartbeat"]

    def test_seeded_schedule_is_deterministic(self):
        assert (
            ChaosTransport.seeded(7, name="a").schedule
            == ChaosTransport.seeded(7, name="b").schedule
        )
        assert (
            ChaosTransport.seeded(7).schedule != ChaosTransport.seeded(8).schedule
        )

    def test_seeded_schedule_contains_only_recoverable_faults(self):
        for seed in range(20):
            for event in ChaosTransport.seeded(seed).schedule:
                # A dropped result (without a kill) would stall the sweep
                # forever; the generator must never emit one.
                assert not (
                    event.action == "drop" and event.message_type == "result"
                ), f"seed {seed} generated an unrecoverable fault"

    def test_rejects_malformed_events(self):
        with pytest.raises(ValueError):
            ChaosEvent("sideways", "job", 1, "drop")
        with pytest.raises(ValueError):
            ChaosEvent("send", "job", 1, "explode")
        with pytest.raises(ValueError):
            ChaosEvent("send", "job", 0, "drop")


class TestChaosSweeps:
    def test_acceptance_fleet_survives_scripted_kills_and_delayed_heartbeats(self):
        """The ISSUE acceptance scenario, verbatim: persistent 2-worker
        fleet, scripted mid-job kills + delayed heartbeats, report
        byte-identical to ``--backend process``, and ``workers list`` shows
        the surviving fleet afterward."""
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(6)]
        backend, address = backend_on_ephemeral_port(
            workers=2, persistent=True, heartbeat_timeout=LOSS_TIMEOUT
        )
        chaos_a = ChaosTransport(
            [
                # Die mid-job: the result is computed but never delivered.
                ChaosEvent("send", "result", 1, "kill"),
                ChaosEvent("send", "heartbeat", 1, "delay", delay=0.05),
                ChaosEvent("send", "heartbeat", 3, "drop"),
            ],
            name="w-a",
        )
        chaos_b = ChaosTransport(
            [
                ChaosEvent("send", "heartbeat", 1, "delay", delay=0.05),
                ChaosEvent("recv", "job", 2, "delay", delay=0.05),
            ],
            name="w-b",
        )
        chaos_worker(address, "w-a", chaos_a)
        chaos_worker(address, "w-b", chaos_b)
        try:
            report = ParallelRunner(backend=backend).run_specs(specs)
            process = ParallelRunner(workers=2).run_specs(specs)
            assert report.to_json() == process.to_json()

            # The scripted faults actually fired — this test proved something.
            assert "kill" in chaos_a.fired_actions()
            assert "delay" in chaos_b.fired_actions()
            # The forfeited job was requeued, not silently lost.
            assert backend.last_sweep_stats.requeues >= 1

            # The killed daemon redialled: `repro workers list` shows the
            # surviving two-worker fleet.
            wait_for(
                lambda: backend.connected_workers() == 2,
                message="killed daemon to redial",
            )
            with ControlClient(address) as fleet:
                rows = fleet.list()["workers"]
            assert [row["worker"] for row in rows] == ["w-a", "w-b"]
        finally:
            backend.drain()
            backend.close()

    def test_dropped_heartbeats_inside_timeout_change_nothing(self):
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(3)]
        backend, address = backend_on_ephemeral_port(
            persistent=True, heartbeat_timeout=LOSS_TIMEOUT
        )
        transport = ChaosTransport(
            [ChaosEvent("send", "heartbeat", n, "drop") for n in (1, 2, 4)],
            name="lossy",
        )
        chaos_worker(address, "w-lossy", transport)
        try:
            # An idle daemon heartbeats too: let all three scripted drops
            # fire *before* the sweep so they can't land after it (a tiny
            # sweep can finish before the first 50 ms beat).
            wait_for(
                lambda: transport.fired_actions().count("drop") == 3,
                message="scripted heartbeat drops",
            )
            report = ParallelRunner(backend=backend).run_specs(specs)
            assert report.to_json() == ParallelRunner(workers=1).run_specs(specs).to_json()
            assert backend.connected_workers() == 1  # never declared lost
        finally:
            backend.drain()
            backend.close()

    def test_duplicated_results_are_deduplicated(self):
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(3)]
        backend, address = backend_on_ephemeral_port(
            persistent=True, heartbeat_timeout=LOSS_TIMEOUT
        )
        transport = ChaosTransport(
            [
                ChaosEvent("send", "result", 1, "dup"),
                ChaosEvent("send", "result", 2, "dup"),
            ],
            name="stutter",
        )
        chaos_worker(address, "w-stutter", transport)
        try:
            report = ParallelRunner(backend=backend).run_specs(specs)
            assert report.to_json() == ParallelRunner(workers=1).run_specs(specs).to_json()
            assert len(report.results) == len(specs)  # no doubled rows
            assert transport.fired_actions().count("dup") == 2
        finally:
            backend.drain()
            backend.close()

    def test_sole_worker_killed_mid_job_redials_and_finishes(self):
        """Losing the *only* worker mid-job still completes the sweep: the
        job is requeued, the daemon redials, and the report is untouched."""
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(3)]
        backend, address = backend_on_ephemeral_port(
            persistent=True, heartbeat_timeout=LOSS_TIMEOUT
        )
        transport = ChaosTransport(
            [ChaosEvent("recv", "job", 2, "kill")], name="fragile"
        )
        chaos_worker(address, "w-fragile", transport)
        try:
            report = ParallelRunner(backend=backend).run_specs(specs)
            assert report.to_json() == ParallelRunner(workers=1).run_specs(specs).to_json()
            assert "kill" in transport.fired_actions()
            assert backend.last_sweep_stats.requeues >= 1
            assert backend.connected_workers() == 1  # back from the dead
        finally:
            backend.drain()
            backend.close()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seeded_chaos_schedules_leave_reports_byte_identical(self, seed):
        """The ``make chaos`` sweep: randomized-but-seeded recoverable-fault
        schedules on a persistent 2-worker fleet never perturb the report."""
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(4)]
        backend, address = backend_on_ephemeral_port(
            workers=2, persistent=True, heartbeat_timeout=LOSS_TIMEOUT
        )
        transports = [
            ChaosTransport.seeded(seed, name="w-c0"),
            ChaosTransport.seeded(seed + 1000, kills=0, name="w-c1"),
        ]
        chaos_worker(address, "w-c0", transports[0])
        chaos_worker(address, "w-c1", transports[1])
        try:
            report = ParallelRunner(backend=backend).run_specs(specs)
            assert report.to_json() == ParallelRunner(workers=2).run_specs(specs).to_json()
        finally:
            backend.drain()
            backend.close()

    def test_second_sweep_on_the_same_fleet_is_clean(self):
        """Persistence across sweeps: after a chaos-ridden sweep, the *same*
        fleet serves a second, fault-free sweep with an untouched report."""
        backend, address = backend_on_ephemeral_port(
            persistent=True, heartbeat_timeout=LOSS_TIMEOUT
        )
        transport = ChaosTransport(
            [ChaosEvent("send", "result", 1, "kill")], name="once-bitten"
        )
        chaos_worker(address, "w-2sweeps", transport)
        try:
            first = [tiny_spec("first", seed=1)]
            second = [tiny_spec(f"second-{i}", seed=i + 10) for i in range(2)]
            ParallelRunner(backend=backend).run_specs(first)
            report = ParallelRunner(backend=backend).run_specs(second)
            assert (
                report.to_json() == ParallelRunner(workers=1).run_specs(second).to_json()
            )
        finally:
            backend.drain()
            backend.close()