"""Exhaustive tests of the job-queue lifecycle state machine.

Every legal edge of QUEUED/RUNNING/DONE/ERROR is walked, every illegal edge
is proven to raise, and the retry budget's exhaustion semantics — the thing
that turns "worker keeps dying" into a clean sweep abort — are pinned down.
"""

import pytest

from repro.exec.queue import (
    DEFAULT_RETRY_BUDGET,
    IllegalTransition,
    JobQueue,
    JobState,
    RetryBudgetExhausted,
)


def drive_to(queue: JobQueue, index: int, state: JobState) -> None:
    """Walk a QUEUED job along legal edges into ``state``."""
    if state is JobState.QUEUED:
        return
    queue.mark_running(index, worker="w")
    if state is JobState.RUNNING:
        return
    if state is JobState.DONE:
        queue.mark_done(index)
    else:
        queue.mark_error(index, "boom")


class TestConstruction:
    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            JobQueue([0, 1, 0])

    def test_negative_retry_budget_rejected(self):
        with pytest.raises(ValueError, match="retry_budget"):
            JobQueue([0], retry_budget=-1)

    def test_labels_default_to_job_index(self):
        queue = JobQueue([3], labels={})
        assert queue.job(3).label == "job 3"

    def test_labels_name_jobs(self):
        queue = JobQueue([0], labels={0: "smoke"})
        assert queue.job(0).label == "smoke"

    def test_default_budget_applied(self):
        assert JobQueue([0]).job(0).retries_left == DEFAULT_RETRY_BUDGET

    def test_contains_checks_indices_not_records(self):
        queue = JobQueue([0, 5])
        assert 5 in queue
        assert 1 not in queue
        assert len(queue) == 2


class TestDispatchOrder:
    def test_next_job_follows_priority_order(self):
        queue = JobQueue([2, 0, 1])
        assert queue.next_job() == 2
        queue.mark_running(2, worker="w")
        assert queue.next_job() == 0

    def test_next_job_peeks_without_transitioning(self):
        queue = JobQueue([0])
        assert queue.next_job() == 0
        assert queue.next_job() == 0  # still there: peek, not pop
        assert queue.state(0) is JobState.QUEUED

    def test_next_job_none_when_nothing_queued(self):
        queue = JobQueue([0])
        queue.mark_running(0, worker="w")
        assert queue.next_job() is None

    def test_requeue_front_restores_priority(self):
        queue = JobQueue([0, 1, 2])
        queue.mark_running(0, worker="w")
        queue.requeue(0, front=True)
        assert queue.next_job() == 0  # the heavy forfeited job goes first

    def test_requeue_back_yields_to_others(self):
        queue = JobQueue([0, 1])
        queue.mark_running(0, worker="w")
        queue.requeue(0, front=False)
        assert queue.next_job() == 1


class TestLegalEdges:
    def test_queued_to_running(self):
        queue = JobQueue([0])
        queue.mark_running(0, worker="w7")
        job = queue.job(0)
        assert job.state is JobState.RUNNING
        assert job.worker == "w7"
        assert job.attempts == 1

    def test_running_to_done(self):
        queue = JobQueue([0])
        queue.mark_running(0, worker="w")
        queue.mark_done(0)
        assert queue.state(0) is JobState.DONE
        assert queue.finished

    def test_running_to_queued_burns_one_retry(self):
        queue = JobQueue([0], retry_budget=2)
        queue.mark_running(0, worker="w")
        queue.requeue(0)
        job = queue.job(0)
        assert job.state is JobState.QUEUED
        assert job.retries_left == 1
        assert job.worker is None

    def test_running_to_error(self):
        queue = JobQueue([0])
        queue.mark_running(0, worker="w")
        queue.mark_error(0, "division by zero")
        job = queue.job(0)
        assert job.state is JobState.ERROR
        assert job.error == "division by zero"
        assert queue.finished  # ERROR is terminal; the queue counts as done

    def test_straggler_edge_queued_to_done_withdraws_retry(self):
        """A prematurely-lost worker's result lands while the retry queues:
        the job completes and the queued copy evaporates."""
        queue = JobQueue([0, 1], retry_budget=1)
        queue.mark_running(0, worker="w0")
        queue.requeue(0, front=True)  # w0 declared lost
        queue.mark_done(0)  # ...but its result arrives anyway
        assert queue.state(0) is JobState.DONE
        assert queue.next_job() == 1  # the withdrawn retry is gone

    def test_ghost_error_queued_to_error(self):
        """Same straggler rule for errors: deterministic crash, fail now."""
        queue = JobQueue([0], retry_budget=1)
        queue.mark_running(0, worker="w0")
        queue.requeue(0)
        queue.mark_error(0, "deterministic crash")
        assert queue.state(0) is JobState.ERROR
        assert queue.next_job() is None


class TestIllegalEdges:
    @pytest.mark.parametrize("state", [JobState.RUNNING, JobState.DONE, JobState.ERROR])
    def test_mark_running_requires_queued(self, state):
        queue = JobQueue([0])
        drive_to(queue, 0, state)
        with pytest.raises(IllegalTransition):
            queue.mark_running(0, worker="w")

    @pytest.mark.parametrize("state", [JobState.DONE, JobState.ERROR])
    def test_mark_done_rejects_terminal_states(self, state):
        queue = JobQueue([0])
        drive_to(queue, 0, state)
        with pytest.raises(IllegalTransition):
            queue.mark_done(0)

    @pytest.mark.parametrize("state", [JobState.QUEUED, JobState.DONE, JobState.ERROR])
    def test_requeue_requires_running(self, state):
        queue = JobQueue([0])
        drive_to(queue, 0, state)
        with pytest.raises(IllegalTransition):
            queue.requeue(0)

    @pytest.mark.parametrize("state", [JobState.DONE, JobState.ERROR])
    def test_mark_error_rejects_terminal_states(self, state):
        queue = JobQueue([0])
        drive_to(queue, 0, state)
        with pytest.raises(IllegalTransition):
            queue.mark_error(0, "late error")

    def test_terminal_states_never_move(self):
        queue = JobQueue([0])
        drive_to(queue, 0, JobState.DONE)
        for illegal in (
            lambda: queue.mark_running(0, worker="w"),
            lambda: queue.mark_done(0),
            lambda: queue.requeue(0),
            lambda: queue.mark_error(0, "x"),
        ):
            with pytest.raises(IllegalTransition):
                illegal()
        assert queue.state(0) is JobState.DONE

    def test_unknown_index_raises_keyerror(self):
        queue = JobQueue([0])
        with pytest.raises(KeyError):
            queue.state(99)


class TestRetryBudget:
    def test_exhaustion_raises_and_parks_in_error(self):
        queue = JobQueue([0], retry_budget=1, labels={0: "heavy"})
        queue.mark_running(0, worker="w0")
        queue.requeue(0)  # burns the only retry
        queue.mark_running(0, worker="w1")
        with pytest.raises(RetryBudgetExhausted, match="heavy"):
            queue.requeue(0)
        job = queue.job(0)
        assert job.state is JobState.ERROR
        assert job.error == "retry budget exhausted"
        assert queue.finished  # the sweep aborts; nothing left to run

    def test_zero_budget_fails_on_first_loss(self):
        queue = JobQueue([0], retry_budget=0)
        queue.mark_running(0, worker="w")
        with pytest.raises(RetryBudgetExhausted):
            queue.requeue(0)

    def test_attempts_count_every_dispatch(self):
        queue = JobQueue([0], retry_budget=3)
        for _ in range(3):
            queue.mark_running(0, worker="w")
            queue.requeue(0)
        queue.mark_running(0, worker="w")
        assert queue.job(0).attempts == 4
        assert queue.job(0).retries_left == 0


class TestIntrospection:
    def test_counts_track_every_state(self):
        queue = JobQueue([0, 1, 2, 3])
        queue.mark_running(0, worker="w")
        queue.mark_running(1, worker="w")
        queue.mark_done(1)
        queue.mark_running(2, worker="w")
        queue.mark_error(2, "x")
        assert queue.counts() == {"queued": 1, "running": 1, "done": 1, "error": 1}

    def test_done_count_counts_only_done(self):
        queue = JobQueue([0, 1])
        drive_to(queue, 0, JobState.ERROR)
        drive_to(queue, 1, JobState.DONE)
        assert queue.done_count == 1

    def test_snapshot_is_plain_json(self):
        import json

        queue = JobQueue([1, 0], labels={0: "a", 1: "b"})
        queue.mark_running(1, worker="w")
        snapshot = queue.snapshot()
        assert [row["index"] for row in snapshot] == [0, 1]  # index order
        assert snapshot[1]["state"] == "running"
        json.dumps(snapshot)  # must serialise without custom encoders

    def test_stats_count_dispatches_and_requeues(self):
        queue = JobQueue([0], retry_budget=1)
        queue.mark_running(0, worker="w")
        queue.requeue(0)
        queue.mark_running(0, worker="w")
        queue.mark_done(0)
        assert queue.stats.dispatches == 2
        assert queue.stats.requeues == 1