"""Tests for the control plane and the shared-secret handshake.

Covers the tentpole's trust model (HMAC challenge/response, mutual proof,
rejection *before* any job frame) and the ``repro workers`` verb: ``list``
snapshots the fleet, ``drain`` waits out in-flight jobs before retiring
anyone, and ``scale`` shrinks the fleet without losing a single queued job.
"""

import socket
import threading
import time

import pytest

from repro.exec import ControlClient, ControlError, RemoteBackend, run_worker
from repro.exec.wire import auth_mac, recv_message, send_message
from repro.exec.worker import WorkerRejected, parse_hostport
from repro.simulation.runner import ParallelRunner
from test_remote import backend_on_ephemeral_port, start_worker, tiny_spec


def execute_in_thread(backend, specs) -> tuple[threading.Thread, list]:
    """Run a sweep on a background thread; returns (thread, results-or-error)."""
    outcome = []

    def sweep():
        try:
            outcome.append(ParallelRunner(backend=backend).run_specs(specs))
        except Exception as error:  # surfaced by the test, not swallowed
            outcome.append(error)

    thread = threading.Thread(target=sweep, daemon=True)
    thread.start()
    return thread, outcome


def wait_for(predicate, timeout: float = 5.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {message}")


class TestHandshake:
    def test_matching_secret_serves_jobs(self):
        specs = [tiny_spec("tiny-auth", seed=3)]
        backend, address = backend_on_ephemeral_port(secret="hunter2")
        start_worker(address, "authed", secret="hunter2")
        report = ParallelRunner(backend=backend).run_specs(specs)
        assert [r.worker for r in report.results] == ["authed"]

    def test_wrong_secret_rejected_before_any_job_frame(self):
        """A wrong MAC gets a reject and EOF; no job (or any other) frame
        ever crosses the wire."""
        backend, address = backend_on_ephemeral_port(secret="right")
        backend.listen()
        host, port = parse_hostport(address)
        sock = socket.create_connection((host, port), timeout=5.0)
        send_message(sock, {"type": "hello", "worker": "mallory", "capacity": 1, "pid": 0})
        challenge = recv_message(sock)
        assert challenge["type"] == "challenge"
        send_message(sock, {"type": "auth", "mac": auth_mac("wrong", challenge["nonce"])})
        reply = recv_message(sock)
        assert reply == {"type": "reject", "reason": "authentication failed"}
        assert recv_message(sock) is None  # connection closed; nothing followed
        assert backend.connected_workers() == 0
        backend.close()

    def test_missing_secret_rejected(self):
        """A worker without the secret cannot answer the challenge."""
        backend, address = backend_on_ephemeral_port(secret="right")
        backend.listen()
        with pytest.raises(WorkerRejected, match="requires a shared secret"):
            run_worker(address, worker_id="naive", retry_seconds=2.0)
        assert backend.connected_workers() == 0
        backend.close()

    def test_worker_refuses_unauthenticated_coordinator(self):
        """Mutual auth: a worker configured with a secret never serves a
        coordinator that cannot prove knowledge of it."""
        backend, address = backend_on_ephemeral_port()  # no secret
        backend.listen()
        with pytest.raises(WorkerRejected, match="prove knowledge"):
            run_worker(address, worker_id="wary", secret="hunter2", retry_seconds=2.0)
        backend.close()

    def test_rejection_is_fatal_even_for_daemons(self):
        """A daemon redials on link loss but not on rejection — redialling a
        coordinator that refused the secret would loop forever."""
        backend, address = backend_on_ephemeral_port(secret="right")
        backend.listen()
        with pytest.raises(WorkerRejected):
            run_worker(
                address, worker_id="d", secret="wrong", daemon=True, retry_seconds=2.0
            )
        backend.close()

    def test_control_session_requires_secret_too(self):
        backend, address = backend_on_ephemeral_port(secret="right")
        backend.listen()
        with pytest.raises(ControlError, match="refused|authentication"):
            ControlClient(address, secret="wrong")
        with ControlClient(address, secret="right") as fleet:
            assert fleet.list()["workers"] == []
        backend.close()


class TestWorkersList:
    def test_fleet_snapshot_shows_workers_and_queue(self):
        backend, address = backend_on_ephemeral_port(persistent=True)
        start_worker(address, "w-list", daemon=True)
        wait_for(lambda: backend.connected_workers() == 1, message="worker join")
        try:
            with ControlClient(address) as fleet:
                view = fleet.list()
            assert view["sweeping"] is False
            assert view["queue"] is None
            (row,) = view["workers"]
            assert row["worker"] == "w-list"
            assert row["daemon"] is True
            assert row["capacity"] == 1
            assert row["in_flight"] == 0
            assert row["jobs_done"] == 0
            assert row["status"] == "ok"
        finally:
            backend.drain()
            backend.close()

    def test_jobs_done_counts_after_a_sweep(self):
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(2)]
        backend, address = backend_on_ephemeral_port(persistent=True)
        start_worker(address, "w-count", daemon=True)
        try:
            ParallelRunner(backend=backend).run_specs(specs)
            with ControlClient(address) as fleet:
                (row,) = fleet.list()["workers"]
            assert row["jobs_done"] == 2
        finally:
            backend.drain()
            backend.close()

    def test_unknown_command_reports_control_error(self):
        backend, address = backend_on_ephemeral_port()
        backend.listen()
        with ControlClient(address) as fleet:
            with pytest.raises(ControlError, match="unknown control command"):
                fleet._command({"type": "mystery"}, expect="anything")
        backend.close()


class TestDrain:
    def test_drain_waits_for_in_flight_jobs(self):
        """A drain issued mid-job lets the job finish (the result is
        delivered, the report is complete) before retiring the worker."""
        release = threading.Event()
        started = threading.Event()

        def slow_runner(spec, *, worker):
            from repro.exec.serial import run_one

            started.set()
            assert release.wait(5.0), "drain should have released the job"
            return run_one(spec, worker=worker)

        backend, address = backend_on_ephemeral_port(persistent=True)
        start_worker(address, "w-drain", daemon=True, runner=slow_runner)
        specs = [tiny_spec("tiny-drain", seed=9)]
        thread, outcome = execute_in_thread(backend, specs)
        try:
            assert started.wait(5.0)

            drained = []
            with ControlClient(address) as fleet:
                drainer = threading.Thread(
                    target=lambda: drained.append(fleet.drain()), daemon=True
                )
                drainer.start()
                # The drain must be *waiting*, not retiring: the job is in
                # flight and the worker must survive until it completes.
                time.sleep(0.3)
                assert not drained
                assert backend.connected_workers() == 1
                release.set()
                drainer.join(timeout=10)
            assert drained and drained[0]["workers"] == 1
            thread.join(timeout=10)
            report = outcome[0]
            assert not isinstance(report, Exception), report
            assert len(report.results) == 1  # the in-flight job was delivered
            assert backend.connected_workers() == 0  # ...and the fleet retired
        finally:
            release.set()
            backend.close()

    def test_drain_while_idle_retires_daemons(self):
        backend, address = backend_on_ephemeral_port(persistent=True)
        start_worker(address, "w-idle-a", daemon=True)
        start_worker(address, "w-idle-b", daemon=True)
        wait_for(lambda: backend.connected_workers() == 2, message="fleet assembly")
        with ControlClient(address) as fleet:
            reply = fleet.drain()
        assert reply["workers"] == 2
        assert backend.connected_workers() == 0
        assert backend.wait_drained(timeout=1.0)
        backend.close()


class TestScale:
    def test_scale_down_mid_sweep_loses_no_jobs(self):
        """Shrinking the fleet to one worker mid-sweep still completes every
        job, byte-identical to a serial run."""
        specs = [tiny_spec(f"tiny-{i}", seed=i) for i in range(6)]
        backend, address = backend_on_ephemeral_port(workers=2, persistent=True)
        start_worker(address, "w-keep", daemon=True)
        start_worker(address, "w-shed", daemon=True)
        wait_for(lambda: backend.connected_workers() == 2, message="fleet assembly")
        thread, outcome = execute_in_thread(backend, specs)
        try:
            with ControlClient(address) as fleet:
                reply = fleet.scale(1)
            assert reply["alive"] == 1
            assert reply["stopped"] == 1
            thread.join(timeout=30)
            report = outcome[0]
            assert not isinstance(report, Exception), report
            serial = ParallelRunner(workers=1).run_specs(specs)
            assert report.to_json() == serial.to_json()
            assert backend.connected_workers() == 1
        finally:
            backend.drain()
            backend.close()

    def test_scale_up_is_advisory(self):
        backend, address = backend_on_ephemeral_port(persistent=True)
        start_worker(address, "w-solo", daemon=True)
        wait_for(lambda: backend.connected_workers() == 1, message="worker join")
        with ControlClient(address) as fleet:
            reply = fleet.scale(3)
        assert (reply["alive"], reply["stopped"], reply["needed"]) == (1, 0, 2)
        assert backend.connected_workers() == 1  # nothing was retired
        backend.drain()
        backend.close()

    def test_scale_to_zero_idle_retires_everyone(self):
        backend, address = backend_on_ephemeral_port(persistent=True)
        start_worker(address, "w-z", daemon=True)
        wait_for(lambda: backend.connected_workers() == 1, message="worker join")
        with ControlClient(address) as fleet:
            reply = fleet.scale(0)
        assert reply["stopped"] == 1
        assert backend.connected_workers() == 0
        backend.close()


class TestWorkersCLI:
    def test_workers_list_renders_fleet_table(self, capsys):
        from repro.cli import main

        backend, address = backend_on_ephemeral_port(persistent=True)
        start_worker(address, "w-cli", daemon=True)
        wait_for(lambda: backend.connected_workers() == 1, message="worker join")
        try:
            assert main(["workers", "list", "--connect", address]) == 0
            out = capsys.readouterr().out
            assert "w-cli" in out
            assert "daemon" in out
            assert "idle" in out
        finally:
            backend.drain()
            backend.close()

    def test_workers_drain_cli_retires_fleet(self, capsys):
        from repro.cli import main

        backend, address = backend_on_ephemeral_port(persistent=True)
        start_worker(address, "w-cli-drain", daemon=True)
        wait_for(lambda: backend.connected_workers() == 1, message="worker join")
        assert main(["workers", "drain", "--connect", address]) == 0
        assert "1 worker(s) retired" in capsys.readouterr().out
        assert backend.connected_workers() == 0
        backend.close()

    def test_workers_against_dead_coordinator_exits_1(self, capsys):
        from repro.cli import main

        assert main(["workers", "list", "--connect", "127.0.0.1:9"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_remote_only_flags_rejected_for_other_backends(self, capsys):
        from repro.cli import main

        for argv in (
            ["sweep", "--backend", "process", "--secret", "s"],
            ["sweep", "--backend", "process", "--persist"],
            ["sweep", "--heartbeat-timeout", "1"],
            ["sweep", "--retry-budget", "2"],
        ):
            assert main(argv) == 2
            assert "only applies to --backend remote" in capsys.readouterr().err