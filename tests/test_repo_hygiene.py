"""Repository hygiene: the local result store must never enter version control.

``python -m repro run/sweep`` persists into ``./repro_results.sqlite`` by
default, right where a contributor is most likely to run it — the repository
root.  A binary store committed by accident churns every diff and leaks one
machine's local run history into everyone's checkout, so these tests pin the
two lines of defence: the ``.gitignore`` rule must cover the default DB path
(and sqlite side files), and the git index must stay free of sqlite files.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

import pytest

from repro.results.store import DEFAULT_DB_NAME, default_db_path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _git(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        ["git", *args], cwd=REPO_ROOT, capture_output=True, text=True, timeout=30
    )


def _require_git_checkout() -> None:
    try:
        probe = _git("rev-parse", "--is-inside-work-tree")
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git binary
        pytest.skip("git is not available")
    if probe.returncode != 0 or probe.stdout.strip() != "true":
        pytest.skip("not running from a git checkout")


class TestGitignoreCoversTheDefaultStore:
    def test_gitignore_names_the_default_db_file(self):
        lines = (REPO_ROOT / ".gitignore").read_text().splitlines()
        assert DEFAULT_DB_NAME in lines

    def test_default_db_path_resolves_to_the_ignored_name(self, monkeypatch):
        # The conftest pins $REPRO_RESULTS_DB for test isolation; drop it to
        # see what a contributor's bare `python -m repro run` would write.
        monkeypatch.delenv("REPRO_RESULTS_DB", raising=False)
        assert default_db_path().name == DEFAULT_DB_NAME

    def test_git_check_ignore_accepts_the_default_path(self):
        _require_git_checkout()
        result = _git("check-ignore", "--quiet", DEFAULT_DB_NAME)
        assert result.returncode == 0, (
            f"git does not ignore {DEFAULT_DB_NAME}; add it to .gitignore"
        )

    def test_git_check_ignore_accepts_sqlite_side_files(self):
        _require_git_checkout()
        result = _git("check-ignore", "--quiet", f"{DEFAULT_DB_NAME}-journal")
        assert result.returncode == 0


class TestNoStoreFilesTracked:
    def test_no_sqlite_files_in_the_git_index(self):
        _require_git_checkout()
        tracked = _git("ls-files").stdout.splitlines()
        offenders = [
            name
            for name in tracked
            if name.endswith((".sqlite", ".sqlite-journal", ".db"))
        ]
        assert offenders == [], f"result stores committed to git: {offenders}"
