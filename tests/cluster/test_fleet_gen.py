"""Unit tests for synthetic fleet generation."""

import numpy as np
import pytest

from repro.cluster.fleet_gen import FleetSpec, generate_fleet, small_fleet, utilization_targets
from repro.cluster.resources import ResourceType


class TestFleetSpec:
    def test_defaults_match_paper_scale(self):
        spec = FleetSpec()
        assert spec.cluster_count == 34  # Figure 6 shows 34 clusters

    def test_invalid_cluster_count(self):
        with pytest.raises(ValueError):
            FleetSpec(cluster_count=0)

    def test_invalid_utilization_range(self):
        with pytest.raises(ValueError):
            FleetSpec(utilization_range=(0.9, 0.1))
        with pytest.raises(ValueError):
            FleetSpec(utilization_range=(-0.1, 0.5))


class TestGenerateFleet:
    def test_cluster_and_pool_counts(self):
        fleet = small_fleet(5, seed=0)
        assert len(fleet.clusters) == 5
        assert len(fleet.pool_index) == 15  # 3 pools per cluster

    def test_deterministic_given_seed(self):
        a = generate_fleet(FleetSpec(cluster_count=6, machines_range=(5, 10)), seed=42)
        b = generate_fleet(FleetSpec(cluster_count=6, machines_range=(5, 10)), seed=42)
        np.testing.assert_allclose(a.pool_index.capacities(), b.pool_index.capacities())
        np.testing.assert_allclose(a.pool_index.utilizations(), b.pool_index.utilizations())

    def test_different_seeds_differ(self):
        a = small_fleet(5, seed=1)
        b = small_fleet(5, seed=2)
        assert not np.allclose(a.pool_index.capacities(), b.pool_index.capacities())

    def test_utilizations_respect_clipping_bounds(self, medium_fleet):
        utils = medium_fleet.pool_index.utilizations()
        assert np.all(utils >= 0.02 - 1e-9)
        assert np.all(utils <= 0.99 + 1e-9)

    def test_fleet_has_both_congested_and_idle_pools(self):
        fleet = generate_fleet(FleetSpec(cluster_count=20, machines_range=(5, 10)), seed=3)
        assert fleet.congested_pools(0.8)
        assert fleet.idle_pools(0.4)

    def test_fixed_prices_equal_unit_costs(self, tiny_fleet):
        for pool in tiny_fleet.pool_index:
            assert tiny_fleet.fixed_prices[pool.name] == pytest.approx(pool.unit_cost)

    def test_snapshot_matches_pool_index(self, tiny_fleet):
        for pool in tiny_fleet.pool_index:
            assert tiny_fleet.snapshot.fraction(pool.name) == pytest.approx(pool.utilization)

    def test_sites_assigned_round_robin(self):
        fleet = generate_fleet(FleetSpec(cluster_count=6, sites=3, machines_range=(5, 10)), seed=0)
        sites = {cluster.site for cluster in fleet.clusters}
        assert len(sites) == 3

    def test_utilization_targets_helper(self, tiny_fleet):
        targets = utilization_targets(tiny_fleet)
        assert set(targets) == set(tiny_fleet.pool_index.names)

    def test_cluster_names_are_unique_and_ordered(self, medium_fleet):
        names = medium_fleet.cluster_names()
        assert len(names) == len(set(names)) == 10

    def test_machine_shapes_within_spec(self):
        spec = FleetSpec(cluster_count=4, machines_range=(5, 10), machine_cpu=(8.0, 16.0))
        fleet = generate_fleet(spec, seed=5)
        for cluster in fleet.clusters:
            per_machine_cpu = cluster.machines[0].capacity.cpu
            assert 8.0 <= per_machine_cpu <= 16.0
            assert 5 <= len(cluster) <= 10

    def test_generator_accepts_generator_instance(self):
        rng = np.random.default_rng(9)
        fleet = generate_fleet(FleetSpec(cluster_count=3, machines_range=(5, 6)), seed=rng)
        assert len(fleet.clusters) == 3
