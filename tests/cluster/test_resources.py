"""Unit tests for resource types and resource vectors."""

import math

import pytest

from repro.cluster.resources import (
    DEFAULT_UNIT_COSTS,
    RESOURCE_TYPES,
    ResourceType,
    ResourceVector,
    cpu_ram_disk,
    sum_vectors,
)


class TestResourceType:
    def test_canonical_ordering_has_three_dimensions(self):
        assert RESOURCE_TYPES == (ResourceType.CPU, ResourceType.RAM, ResourceType.DISK)

    def test_constructible_from_string_value(self):
        assert ResourceType("cpu") is ResourceType.CPU
        assert ResourceType("disk") is ResourceType.DISK

    def test_default_unit_costs_cover_all_types(self):
        assert set(DEFAULT_UNIT_COSTS) == set(RESOURCE_TYPES)

    def test_disk_is_much_cheaper_than_cpu(self):
        # The increment-normalization discussion in the paper hinges on this.
        assert DEFAULT_UNIT_COSTS[ResourceType.DISK] < DEFAULT_UNIT_COSTS[ResourceType.CPU] / 10


class TestResourceVectorConstruction:
    def test_zero_vector(self):
        assert ResourceVector.zero().is_zero()

    def test_from_mapping_with_enum_keys(self):
        vec = ResourceVector.from_mapping({ResourceType.CPU: 4, ResourceType.RAM: 16})
        assert vec.cpu == 4 and vec.ram == 16 and vec.disk == 0

    def test_from_mapping_with_string_keys(self):
        vec = ResourceVector.from_mapping({"cpu": 2, "disk": 100})
        assert vec.cpu == 2 and vec.disk == 100

    def test_cpu_ram_disk_helper(self):
        vec = cpu_ram_disk(1, 2, 3)
        assert (vec.cpu, vec.ram, vec.disk) == (1, 2, 3)

    def test_iteration_order_matches_canonical_order(self):
        assert list(cpu_ram_disk(1, 2, 3)) == [1, 2, 3]


class TestResourceVectorArithmetic:
    def test_addition(self):
        assert cpu_ram_disk(1, 2, 3) + cpu_ram_disk(4, 5, 6) == cpu_ram_disk(5, 7, 9)

    def test_subtraction(self):
        assert cpu_ram_disk(4, 5, 6) - cpu_ram_disk(1, 2, 3) == cpu_ram_disk(3, 3, 3)

    def test_scalar_multiplication_both_sides(self):
        assert cpu_ram_disk(1, 2, 3) * 2 == cpu_ram_disk(2, 4, 6)
        assert 3 * cpu_ram_disk(1, 2, 3) == cpu_ram_disk(3, 6, 9)

    def test_negation(self):
        assert -cpu_ram_disk(1, 2, 3) == cpu_ram_disk(-1, -2, -3)

    def test_sum_vectors_of_empty_iterable_is_zero(self):
        assert sum_vectors([]).is_zero()

    def test_sum_vectors(self):
        total = sum_vectors([cpu_ram_disk(1, 1, 1)] * 4)
        assert total == cpu_ram_disk(4, 4, 4)


class TestResourceVectorComparisons:
    def test_fits_within(self):
        assert cpu_ram_disk(1, 1, 1).fits_within(cpu_ram_disk(2, 2, 2))
        assert not cpu_ram_disk(3, 1, 1).fits_within(cpu_ram_disk(2, 2, 2))

    def test_fits_within_tolerance(self):
        assert cpu_ram_disk(1.0 + 1e-12, 1, 1).fits_within(cpu_ram_disk(1, 1, 1))

    def test_dominates_is_inverse_of_fits_within(self):
        big, small = cpu_ram_disk(5, 5, 5), cpu_ram_disk(1, 2, 3)
        assert big.dominates(small)
        assert not small.dominates(big)

    def test_is_nonnegative(self):
        assert cpu_ram_disk(0, 1, 2).is_nonnegative()
        assert not cpu_ram_disk(-1, 1, 2).is_nonnegative()

    def test_clamp_nonnegative(self):
        assert cpu_ram_disk(-1, 2, -3).clamp_nonnegative() == cpu_ram_disk(0, 2, 0)


class TestResourceVectorAggregates:
    def test_total_cost_uses_default_costs(self):
        vec = cpu_ram_disk(1, 1, 1)
        expected = sum(DEFAULT_UNIT_COSTS[r] for r in RESOURCE_TYPES)
        assert vec.total_cost() == pytest.approx(expected)

    def test_total_cost_with_custom_costs(self):
        vec = cpu_ram_disk(2, 3, 4)
        costs = {ResourceType.CPU: 1.0, ResourceType.RAM: 10.0, ResourceType.DISK: 100.0}
        assert vec.total_cost(costs) == pytest.approx(2 + 30 + 400)

    def test_max_fraction_of(self):
        demand = cpu_ram_disk(5, 10, 10)
        capacity = cpu_ram_disk(10, 100, 100)
        assert demand.max_fraction_of(capacity) == pytest.approx(0.5)

    def test_max_fraction_of_zero_capacity_with_demand_is_inf(self):
        demand = cpu_ram_disk(1, 0, 0)
        capacity = cpu_ram_disk(0, 10, 10)
        assert math.isinf(demand.max_fraction_of(capacity))

    def test_max_fraction_of_zero_capacity_without_demand_ignored(self):
        demand = cpu_ram_disk(0, 5, 0)
        capacity = cpu_ram_disk(0, 10, 10)
        assert demand.max_fraction_of(capacity) == pytest.approx(0.5)

    def test_get_and_as_dict_round_trip(self):
        vec = cpu_ram_disk(1, 2, 3)
        assert vec.get(ResourceType.RAM) == 2
        assert vec.as_dict() == {
            ResourceType.CPU: 1,
            ResourceType.RAM: 2,
            ResourceType.DISK: 3,
        }
