"""Unit tests for the bin-packing scheduler and utilization metrics."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.jobs import Job
from repro.cluster.pools import pools_from_topology
from repro.cluster.resources import ResourceType, cpu_ram_disk
from repro.cluster.scheduler import (
    BestFitPolicy,
    BinPackingScheduler,
    FirstFitPolicy,
    WorstFitPolicy,
)
from repro.cluster.utilization import (
    percentile_ranks,
    snapshot_clusters,
    snapshot_pools,
    utilization_percentiles,
    utilization_spread,
)


def small_cluster(machines=4, cap=(10, 40, 100)) -> Cluster:
    return Cluster.homogeneous("c0", machine_count=machines, machine_capacity=cpu_ram_disk(*cap))


class TestPlacementPolicies:
    def test_first_fit_picks_first_feasible(self):
        cluster = small_cluster()
        job = Job(owner="x", demand=cpu_ram_disk(1, 1, 1))
        chosen = FirstFitPolicy().choose(job, cluster.machines)
        assert chosen is cluster.machines[0]

    def test_best_fit_prefers_fuller_machine(self):
        cluster = small_cluster(machines=2)
        cluster.machines[0].place(Job(owner="x", demand=cpu_ram_disk(8, 1, 1)))
        job = Job(owner="x", demand=cpu_ram_disk(1, 1, 1))
        chosen = BestFitPolicy().choose(job, cluster.machines)
        assert chosen is cluster.machines[0]

    def test_worst_fit_prefers_emptier_machine(self):
        cluster = small_cluster(machines=2)
        cluster.machines[0].place(Job(owner="x", demand=cpu_ram_disk(8, 1, 1)))
        job = Job(owner="x", demand=cpu_ram_disk(1, 1, 1))
        chosen = WorstFitPolicy().choose(job, cluster.machines)
        assert chosen is cluster.machines[1]

    def test_policies_return_none_when_nothing_fits(self):
        cluster = small_cluster(machines=1, cap=(2, 2, 2))
        job = Job(owner="x", demand=cpu_ram_disk(5, 1, 1))
        for policy in (FirstFitPolicy(), BestFitPolicy(), WorstFitPolicy()):
            assert policy.choose(job, cluster.machines) is None


class TestBinPackingScheduler:
    def test_places_all_jobs_that_fit(self):
        cluster = small_cluster(machines=4)
        jobs = [Job(owner="x", demand=cpu_ram_disk(2, 2, 2)) for _ in range(8)]
        result = BinPackingScheduler().schedule(cluster, jobs)
        assert result.all_placed
        assert result.placed_count == 8
        assert cluster.utilization(ResourceType.CPU) == pytest.approx(16 / 40)

    def test_reports_unplaced_jobs(self):
        cluster = small_cluster(machines=1, cap=(4, 4, 4))
        jobs = [Job(owner="x", demand=cpu_ram_disk(3, 3, 3)) for _ in range(3)]
        result = BinPackingScheduler().schedule(cluster, jobs)
        assert result.placed_count == 1
        assert result.unplaced_count == 2
        assert not result.all_placed

    def test_multi_task_jobs_spread_across_machines(self):
        cluster = small_cluster(machines=4, cap=(4, 16, 100))
        job = Job(owner="x", demand=cpu_ram_disk(3, 3, 3), tasks=4)
        result = BinPackingScheduler(split_tasks=True).schedule(cluster, [job])
        assert result.placed_count == 4
        used_machines = sum(1 for m in cluster.machines if m.jobs)
        assert used_machines == 4

    def test_without_task_split_large_job_cannot_fit(self):
        cluster = small_cluster(machines=4, cap=(4, 16, 100))
        job = Job(owner="x", demand=cpu_ram_disk(3, 3, 3), tasks=4)
        result = BinPackingScheduler(split_tasks=False).schedule(cluster, [job])
        assert result.unplaced_count == 1

    def test_preempt_below_evicts_only_lower_priority(self):
        cluster = small_cluster(machines=2)
        scheduler = BinPackingScheduler()
        scheduler.schedule(
            cluster,
            [
                Job(owner="low", demand=cpu_ram_disk(1, 1, 1), priority=0),
                Job(owner="high", demand=cpu_ram_disk(1, 1, 1), priority=5),
            ],
        )
        evicted = scheduler.preempt_below(cluster, priority=3)
        assert [j.owner for j in evicted] == ["low"]
        assert [j.owner for j in cluster.jobs()] == ["high"]


class TestPercentileRanks:
    def test_empty_input(self):
        assert percentile_ranks([]).size == 0

    def test_single_value_is_median(self):
        assert percentile_ranks([0.7]).tolist() == [50.0]

    def test_monotone_values_span_0_to_100(self):
        ranks = percentile_ranks([0.1, 0.2, 0.3, 0.4, 0.5])
        assert ranks[0] == 0.0 and ranks[-1] == 100.0
        assert np.all(np.diff(ranks) > 0)

    def test_ties_share_a_rank(self):
        ranks = percentile_ranks([0.5, 0.5, 1.0])
        assert ranks[0] == ranks[1]
        assert ranks[2] == 100.0


class TestSnapshots:
    def test_snapshot_clusters_and_pools_agree(self, tiny_fleet):
        snap_c = snapshot_clusters(tiny_fleet.clusters)
        snap_p = snapshot_pools(tiny_fleet.pool_index)
        for name in tiny_fleet.pool_index.names:
            assert snap_c.fraction(name) == pytest.approx(snap_p.fraction(name), abs=1e-9)
            assert snap_c.percentile(name) == pytest.approx(snap_p.percentile(name), abs=1e-9)

    def test_snapshot_vectors_follow_index_order(self, tiny_fleet):
        snap = snapshot_pools(tiny_fleet.pool_index)
        vec = snap.as_vector(tiny_fleet.pool_index)
        np.testing.assert_allclose(vec, tiny_fleet.pool_index.utilizations())

    def test_utilization_percentiles_accepts_mapping(self):
        ranks = utilization_percentiles({"a/cpu": 0.2, "b/cpu": 0.8})
        assert ranks["a/cpu"] < ranks["b/cpu"]

    def test_percentiles_are_within_bounds(self, medium_fleet):
        snap = snapshot_pools(medium_fleet.pool_index)
        values = np.array(list(snap.percentiles.values()))
        assert np.all(values >= 0.0) and np.all(values <= 100.0)


class TestUtilizationSpread:
    def test_uniform_fractions_have_zero_spread(self):
        assert utilization_spread([0.5, 0.5, 0.5]) == 0.0

    def test_spread_increases_with_imbalance(self):
        assert utilization_spread([0.1, 0.9]) > utilization_spread([0.45, 0.55])

    def test_empty_input(self):
        assert utilization_spread([]) == 0.0
