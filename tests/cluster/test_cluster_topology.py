"""Unit tests for Cluster and FleetTopology."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.jobs import Job
from repro.cluster.resources import ResourceType, cpu_ram_disk
from repro.cluster.topology import FleetTopology, Site


class TestCluster:
    def test_homogeneous_builder(self):
        cluster = Cluster.homogeneous("c0", machine_count=5, machine_capacity=cpu_ram_disk(10, 40, 100))
        assert len(cluster) == 5
        assert cluster.capacity == cpu_ram_disk(50, 200, 500)

    def test_homogeneous_rejects_negative_count(self):
        with pytest.raises(ValueError):
            Cluster.homogeneous("c0", machine_count=-1)

    def test_utilization_from_placed_jobs(self):
        cluster = Cluster.homogeneous("c0", machine_count=2, machine_capacity=cpu_ram_disk(10, 10, 10))
        cluster.machines[0].place(Job(owner="x", demand=cpu_ram_disk(5, 0, 0)))
        assert cluster.utilization(ResourceType.CPU) == pytest.approx(0.25)
        assert cluster.utilization(ResourceType.RAM) == pytest.approx(0.0)

    def test_background_load_contributes_to_utilization(self):
        cluster = Cluster.homogeneous("c0", machine_count=2, machine_capacity=cpu_ram_disk(10, 10, 10))
        cluster.set_background_load({ResourceType.CPU: 0.5})
        assert cluster.utilization(ResourceType.CPU) == pytest.approx(0.5)
        assert cluster.free.cpu == pytest.approx(10.0)

    def test_background_load_is_clamped_to_unit_interval(self):
        cluster = Cluster.homogeneous("c0", machine_count=1)
        cluster.set_background_load({ResourceType.CPU: 1.5, ResourceType.RAM: -0.2})
        assert cluster.background_load[ResourceType.CPU] == 1.0
        assert cluster.background_load[ResourceType.RAM] == 0.0

    def test_utilization_capped_at_one(self):
        cluster = Cluster.homogeneous("c0", machine_count=1, machine_capacity=cpu_ram_disk(10, 10, 10))
        cluster.set_background_load({ResourceType.CPU: 0.99})
        cluster.machines[0].place(Job(owner="x", demand=cpu_ram_disk(5, 0, 0)))
        assert cluster.utilization(ResourceType.CPU) == 1.0

    def test_jobs_by_owner(self):
        cluster = Cluster.homogeneous("c0", machine_count=2, machine_capacity=cpu_ram_disk(100, 100, 100))
        cluster.machines[0].place(Job(owner="ads", demand=cpu_ram_disk(1, 1, 1)))
        cluster.machines[1].place(Job(owner="maps", demand=cpu_ram_disk(1, 1, 1)))
        assert len(cluster.jobs()) == 2
        assert len(cluster.jobs_by_owner("ads")) == 1

    def test_clear_jobs_keeps_background_load(self):
        cluster = Cluster.homogeneous("c0", machine_count=1, machine_capacity=cpu_ram_disk(10, 10, 10))
        cluster.set_background_load({ResourceType.CPU: 0.3})
        cluster.machines[0].place(Job(owner="x", demand=cpu_ram_disk(2, 0, 0)))
        cluster.clear_jobs()
        assert cluster.jobs() == []
        assert cluster.utilization(ResourceType.CPU) == pytest.approx(0.3)

    def test_empty_cluster_utilization_is_zero(self):
        cluster = Cluster(name="empty")
        assert cluster.utilization(ResourceType.CPU) == 0.0
        assert cluster.capacity.is_zero()


class TestFleetTopology:
    def build(self) -> FleetTopology:
        topo = FleetTopology()
        topo.add_site(Site(name="us-east", coordinates=(0.0, 0.0)))
        topo.add_site(Site(name="eu-west", coordinates=(3.0, 4.0)))
        topo.add_cluster(Cluster.homogeneous("c-us", machine_count=1, site="us-east"))
        topo.add_cluster(Cluster.homogeneous("c-eu", machine_count=1, site="eu-west"))
        return topo

    def test_add_cluster_requires_known_site(self):
        topo = FleetTopology()
        with pytest.raises(KeyError):
            topo.add_cluster(Cluster.homogeneous("c0", machine_count=1, site="nowhere"))

    def test_duplicate_cluster_rejected(self):
        topo = self.build()
        with pytest.raises(ValueError):
            topo.add_cluster(Cluster.homogeneous("c-us", machine_count=1, site="us-east"))

    def test_duplicate_site_with_different_attributes_rejected(self):
        topo = self.build()
        with pytest.raises(ValueError):
            topo.add_site(Site(name="us-east", coordinates=(9.0, 9.0)))

    def test_site_distance_is_euclidean(self):
        topo = self.build()
        assert topo.site_distance("us-east", "eu-west") == pytest.approx(5.0)

    def test_cluster_distance_same_site_is_zero(self):
        topo = self.build()
        topo.add_cluster(Cluster.homogeneous("c-us-2", machine_count=1, site="us-east"))
        assert topo.cluster_distance("c-us", "c-us-2") == 0.0
        assert topo.cluster_distance("c-us", "c-eu") == pytest.approx(5.0)

    def test_from_clusters_autocreates_sites(self):
        clusters = [Cluster.homogeneous(f"c{i}", machine_count=1, site=f"s{i}") for i in range(3)]
        topo = FleetTopology.from_clusters(clusters)
        assert len(topo) == 3
        assert set(topo.sites) == {"s0", "s1", "s2"}

    def test_clusters_at_and_site_of(self):
        topo = self.build()
        assert [c.name for c in topo.clusters_at("us-east")] == ["c-us"]
        assert topo.site_of("c-eu").name == "eu-west"

    def test_iteration_and_len(self):
        topo = self.build()
        assert len(topo) == 2
        assert {c.name for c in topo} == {"c-us", "c-eu"}
