"""Unit tests for ResourcePool and PoolIndex."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.pools import PoolIndex, ResourcePool, pools_from_topology
from repro.cluster.resources import ResourceType, cpu_ram_disk
from repro.cluster.topology import FleetTopology


def make_pool(cluster="c0", rtype=ResourceType.CPU, capacity=100.0, cost=10.0, util=0.5):
    return ResourcePool(cluster=cluster, rtype=rtype, capacity=capacity, unit_cost=cost, utilization=util)


class TestResourcePool:
    def test_name_combines_cluster_and_type(self):
        assert make_pool().name == "c0/cpu"

    def test_available_capacity(self):
        assert make_pool(capacity=100, util=0.25).available == pytest.approx(75.0)

    def test_invalid_utilization_rejected(self):
        with pytest.raises(ValueError):
            make_pool(util=1.5)
        with pytest.raises(ValueError):
            make_pool(util=-0.1)

    def test_negative_capacity_or_cost_rejected(self):
        with pytest.raises(ValueError):
            make_pool(capacity=-1)
        with pytest.raises(ValueError):
            make_pool(cost=-1)

    def test_with_utilization_clips_to_unit_interval(self):
        pool = make_pool(util=0.5)
        assert pool.with_utilization(1.7).utilization == 1.0
        assert pool.with_utilization(-0.2).utilization == 0.0
        assert pool.with_utilization(0.8).utilization == pytest.approx(0.8)


class TestPoolIndex:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PoolIndex([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            PoolIndex([make_pool(), make_pool()])

    def test_lookup_and_membership(self, pool_index):
        assert "alpha/cpu" in pool_index
        assert "gamma/cpu" not in pool_index
        assert pool_index.pool("alpha/cpu").rtype is ResourceType.CPU
        assert pool_index.index_of("alpha/cpu") == 0

    def test_names_follow_insertion_order(self, pool_index):
        assert pool_index.names[:3] == ["alpha/cpu", "alpha/ram", "alpha/disk"]

    def test_pools_of_cluster_and_type(self, pool_index):
        assert len(pool_index.pools_of_cluster("alpha")) == 3
        assert len(pool_index.pools_of_type(ResourceType.RAM)) == 2

    def test_clusters_in_first_appearance_order(self, pool_index):
        assert pool_index.clusters() == ["alpha", "beta"]

    def test_vector_views_have_matching_lengths(self, pool_index):
        n = len(pool_index)
        assert pool_index.capacities().shape == (n,)
        assert pool_index.unit_costs().shape == (n,)
        assert pool_index.utilizations().shape == (n,)
        assert pool_index.available().shape == (n,)

    def test_available_is_capacity_times_one_minus_util(self, pool_index):
        np.testing.assert_allclose(
            pool_index.available(),
            pool_index.capacities() * (1 - pool_index.utilizations()),
        )

    def test_vector_construction_and_describe_round_trip(self, pool_index):
        quantities = {"alpha/cpu": 10.0, "beta/disk": -5.0}
        vec = pool_index.vector(quantities)
        assert vec[pool_index.index_of("alpha/cpu")] == 10.0
        assert pool_index.describe(vec) == quantities

    def test_vector_unknown_pool_raises(self, pool_index):
        with pytest.raises(KeyError):
            pool_index.vector({"nope/cpu": 1.0})

    def test_describe_rejects_wrong_shape(self, pool_index):
        with pytest.raises(ValueError):
            pool_index.describe(np.zeros(3))

    def test_cluster_bundle(self, pool_index):
        vec = pool_index.cluster_bundle("beta", cpu=4, ram=16, disk=100)
        described = pool_index.describe(vec)
        assert described == {"beta/cpu": 4.0, "beta/ram": 16.0, "beta/disk": 100.0}

    def test_cluster_bundle_all_zero_is_zero_vector(self, pool_index):
        assert not np.any(pool_index.cluster_bundle("beta"))

    def test_with_utilizations_mapping(self, pool_index):
        updated = pool_index.with_utilizations({"alpha/cpu": 0.1})
        assert updated.pool("alpha/cpu").utilization == pytest.approx(0.1)
        # untouched pools keep their utilization
        assert updated.pool("beta/cpu").utilization == pool_index.pool("beta/cpu").utilization

    def test_with_utilizations_array(self, pool_index):
        arr = np.full(len(pool_index), 0.42)
        updated = pool_index.with_utilizations(arr)
        assert np.allclose(updated.utilizations(), 0.42)

    def test_with_utilizations_wrong_length_rejected(self, pool_index):
        with pytest.raises(ValueError):
            pool_index.with_utilizations(np.zeros(2))


class TestPoolsFromTopology:
    def test_builds_three_pools_per_cluster(self):
        clusters = [
            Cluster.homogeneous("c0", machine_count=2, machine_capacity=cpu_ram_disk(10, 40, 100)),
            Cluster.homogeneous("c1", machine_count=1, machine_capacity=cpu_ram_disk(10, 40, 100)),
        ]
        topo = FleetTopology.from_clusters(clusters)
        index = pools_from_topology(topo)
        assert len(index) == 6
        assert index.pool("c0/cpu").capacity == pytest.approx(20.0)
        assert index.pool("c1/ram").capacity == pytest.approx(40.0)

    def test_custom_unit_costs(self):
        clusters = [Cluster.homogeneous("c0", machine_count=1)]
        index = pools_from_topology(clusters, unit_costs={ResourceType.CPU: 99.0, ResourceType.RAM: 1.0, ResourceType.DISK: 0.5})
        assert index.pool("c0/cpu").unit_cost == 99.0

    def test_utilization_read_from_cluster_state(self):
        cluster = Cluster.homogeneous("c0", machine_count=1, machine_capacity=cpu_ram_disk(10, 10, 10))
        cluster.set_background_load({ResourceType.CPU: 0.6})
        index = pools_from_topology([cluster])
        assert index.pool("c0/cpu").utilization == pytest.approx(0.6)
        assert index.pool("c0/ram").utilization == pytest.approx(0.0)
