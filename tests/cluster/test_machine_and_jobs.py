"""Unit tests for the job model and machine placement."""

import numpy as np
import pytest

from repro.cluster.jobs import Job, JobState, make_job_batch, total_footprint
from repro.cluster.machine import CapacityError, Machine
from repro.cluster.resources import ResourceType, cpu_ram_disk


class TestJob:
    def test_footprint_scales_with_tasks(self):
        job = Job(owner="search", demand=cpu_ram_disk(2, 8, 100), tasks=10)
        assert job.footprint == cpu_ram_disk(20, 80, 1000)

    def test_rejects_zero_tasks(self):
        with pytest.raises(ValueError):
            Job(owner="x", demand=cpu_ram_disk(1, 1, 1), tasks=0)

    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError):
            Job(owner="x", demand=cpu_ram_disk(-1, 1, 1))

    def test_default_name_includes_owner(self):
        job = Job(owner="ads", demand=cpu_ram_disk(1, 1, 1))
        assert job.name.startswith("ads/")

    def test_split_tasks_preserves_total_footprint(self):
        job = Job(owner="x", demand=cpu_ram_disk(1, 2, 3), tasks=5)
        parts = job.split_tasks()
        assert len(parts) == 5
        assert total_footprint(parts) == job.footprint

    def test_jobs_get_unique_ids(self):
        a = Job(owner="x", demand=cpu_ram_disk(1, 1, 1))
        b = Job(owner="x", demand=cpu_ram_disk(1, 1, 1))
        assert a.job_id != b.job_id


class TestMakeJobBatch:
    def test_count_and_owner(self, rng):
        jobs = make_job_batch("maps", count=25, rng=rng)
        assert len(jobs) == 25
        assert all(job.owner == "maps" for job in jobs)

    def test_demands_within_configured_ranges(self, rng):
        jobs = make_job_batch("maps", count=50, rng=rng, cpu_range=(1.0, 2.0), tasks_range=(1, 4))
        for job in jobs:
            assert 1.0 <= job.demand.cpu <= 2.0
            assert 1 <= job.tasks <= 4

    def test_deterministic_given_seed(self):
        a = make_job_batch("t", count=10, rng=np.random.default_rng(3))
        b = make_job_batch("t", count=10, rng=np.random.default_rng(3))
        assert [j.demand for j in a] == [j.demand for j in b]

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            make_job_batch("t", count=-1, rng=rng)

    def test_zero_count_gives_empty_batch(self, rng):
        assert make_job_batch("t", count=0, rng=rng) == []


class TestMachine:
    def make_machine(self) -> Machine:
        return Machine(name="m0", capacity=cpu_ram_disk(32, 128, 1000))

    def test_initially_empty(self):
        machine = self.make_machine()
        assert machine.used.is_zero()
        assert machine.free == machine.capacity

    def test_place_updates_used_and_free(self):
        machine = self.make_machine()
        job = Job(owner="x", demand=cpu_ram_disk(8, 32, 100))
        machine.place(job)
        assert machine.used == cpu_ram_disk(8, 32, 100)
        assert machine.free == cpu_ram_disk(24, 96, 900)
        assert job.state is JobState.RUNNING

    def test_place_rejects_when_over_capacity(self):
        machine = self.make_machine()
        job = Job(owner="x", demand=cpu_ram_disk(64, 1, 1))
        with pytest.raises(CapacityError):
            machine.place(job)

    def test_place_same_job_twice_rejected(self):
        machine = self.make_machine()
        job = Job(owner="x", demand=cpu_ram_disk(1, 1, 1))
        machine.place(job)
        with pytest.raises(CapacityError):
            machine.place(job)

    def test_evict_releases_resources(self):
        machine = self.make_machine()
        job = Job(owner="x", demand=cpu_ram_disk(8, 32, 100))
        machine.place(job)
        machine.evict(job)
        assert machine.used.is_zero()
        assert job.state is JobState.EVICTED

    def test_finish_releases_resources(self):
        machine = self.make_machine()
        job = Job(owner="x", demand=cpu_ram_disk(8, 32, 100))
        machine.place(job)
        machine.finish(job)
        assert machine.used.is_zero()
        assert job.state is JobState.FINISHED

    def test_evict_unplaced_job_raises(self):
        machine = self.make_machine()
        job = Job(owner="x", demand=cpu_ram_disk(1, 1, 1))
        with pytest.raises(KeyError):
            machine.evict(job)

    def test_utilization_per_dimension(self):
        machine = self.make_machine()
        machine.place(Job(owner="x", demand=cpu_ram_disk(16, 32, 100)))
        assert machine.utilization(ResourceType.CPU) == pytest.approx(0.5)
        assert machine.utilization(ResourceType.RAM) == pytest.approx(0.25)
        assert machine.dominant_utilization() == pytest.approx(0.5)

    def test_clear_removes_all_jobs(self):
        machine = self.make_machine()
        for _ in range(3):
            machine.place(Job(owner="x", demand=cpu_ram_disk(1, 1, 1)))
        machine.clear()
        assert machine.used.is_zero()
        assert not machine.jobs

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Machine(name="bad", capacity=cpu_ram_disk(-1, 0, 0))
