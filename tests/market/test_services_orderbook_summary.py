"""Unit tests for the service catalog, order book, and market summary."""

import pytest

from repro.cluster.resources import cpu_ram_disk
from repro.core.bids import Bid
from repro.market.orderbook import OrderBook, OrderSide, OrderStatus, side_of
from repro.market.services import ServiceCatalog, ServiceRequest, ServiceSpec, default_catalog
from repro.market.summary import build_market_summary, render_market_summary


class TestServiceSpec:
    def test_covering_amount_scales_linearly(self):
        spec = ServiceSpec(name="svc", unit="u", coverage=cpu_ram_disk(1, 4, 10))
        assert spec.covering_amount(3) == cpu_ram_disk(3, 12, 30)

    def test_negative_quantity_rejected(self):
        spec = ServiceSpec(name="svc", unit="u", coverage=cpu_ram_disk(1, 4, 10))
        with pytest.raises(ValueError):
            spec.covering_amount(-1)

    def test_zero_or_negative_coverage_rejected(self):
        with pytest.raises(ValueError):
            ServiceSpec(name="svc", unit="u", coverage=cpu_ram_disk(0, 0, 0))
        with pytest.raises(ValueError):
            ServiceSpec(name="svc", unit="u", coverage=cpu_ram_disk(-1, 1, 1))

    def test_service_request_validation(self):
        with pytest.raises(ValueError):
            ServiceRequest(service="gfs_storage", cluster="c0", quantity=0)


class TestServiceCatalog:
    def test_default_catalog_has_four_services(self):
        catalog = default_catalog()
        assert set(catalog.names()) == {"gfs_storage", "bigtable_serving", "batch_compute", "web_serving"}
        assert "gfs_storage" in catalog

    def test_unknown_service_raises(self):
        with pytest.raises(KeyError):
            default_catalog().spec("mapreduce")

    def test_covering_bundle_targets_requested_cluster(self, pool_index):
        catalog = default_catalog()
        bundle = catalog.covering_bundle(ServiceRequest("batch_compute", "alpha", 10), pool_index)
        assert set(bundle) == {"alpha/cpu", "alpha/ram", "alpha/disk"}
        assert bundle["alpha/cpu"] == pytest.approx(10.0)  # 1 CPU per worker slot

    def test_covering_bundle_unknown_cluster(self, pool_index):
        with pytest.raises(KeyError):
            default_catalog().covering_bundle(ServiceRequest("batch_compute", "nowhere", 1), pool_index)

    def test_gfs_is_disk_dominant(self, pool_index):
        bundle = default_catalog().covering_bundle(ServiceRequest("gfs_storage", "alpha", 1), pool_index)
        assert bundle["alpha/disk"] > 100 * bundle["alpha/cpu"]

    def test_covering_cost_uses_given_prices(self, pool_index):
        catalog = default_catalog()
        request = ServiceRequest("web_serving", "beta", 2)
        prices = {name: 1.0 for name in pool_index.names}
        bundle = catalog.covering_bundle(request, pool_index)
        assert catalog.covering_cost(request, pool_index, prices) == pytest.approx(sum(bundle.values()))

    def test_alternatives_bundle_covers_each_cluster(self, pool_index):
        catalog = default_catalog()
        alternatives = catalog.alternatives_bundle("batch_compute", 5, ["alpha", "beta"], pool_index)
        assert len(alternatives) == 2
        assert "alpha/cpu" in alternatives[0] and "beta/cpu" in alternatives[1]

    def test_register_replaces_spec(self):
        catalog = ServiceCatalog()
        catalog.register(ServiceSpec(name="svc", unit="u", coverage=cpu_ram_disk(1, 1, 1)))
        catalog.register(ServiceSpec(name="svc", unit="u", coverage=cpu_ram_disk(2, 2, 2)))
        assert catalog.spec("svc").coverage == cpu_ram_disk(2, 2, 2)


class TestOrderBook:
    def test_side_classification(self, pool_index):
        buy = Bid.buy("b", pool_index, [{"alpha/cpu": 1}], max_payment=1.0)
        sell = Bid.sell("s", pool_index, [{"alpha/cpu": 1}], min_revenue=1.0)
        assert side_of(buy) is OrderSide.BID
        assert side_of(sell) is OrderSide.OFFER

    def test_submit_withdraw_lifecycle(self, pool_index):
        book = OrderBook()
        order = book.submit(Bid.buy("b", pool_index, [{"alpha/cpu": 1}], max_payment=1.0))
        assert order.status is OrderStatus.ACTIVE
        book.withdraw(order.order_id)
        assert book.order(order.order_id).status is OrderStatus.WITHDRAWN
        assert book.active_bids() == []
        with pytest.raises(ValueError):
            book.withdraw(order.order_id)

    def test_unknown_order_raises(self):
        with pytest.raises(KeyError):
            OrderBook().order(999999)

    def test_counts_by_cluster(self, pool_index):
        book = OrderBook()
        book.submit(Bid.buy("b1", pool_index, [{"alpha/cpu": 1}], max_payment=1.0))
        book.submit(Bid.buy("b2", pool_index, [{"alpha/cpu": 1}, {"beta/cpu": 1}], max_payment=1.0))
        book.submit(Bid.sell("s", pool_index, [{"beta/cpu": 1}], min_revenue=0.0))
        counts = book.counts_by_cluster()
        assert counts["alpha"][OrderSide.BID] == 2
        assert counts["beta"][OrderSide.BID] == 1
        assert counts["beta"][OrderSide.OFFER] == 1

    def test_mark_settled_splits_winners_and_losers(self, pool_index):
        book = OrderBook()
        book.submit(Bid.buy("w", pool_index, [{"alpha/cpu": 1}], max_payment=10.0))
        book.submit(Bid.buy("l", pool_index, [{"alpha/cpu": 1}], max_payment=10.0))
        book.mark_settled(["w"])
        statuses = {o.bidder: o.status for o in book.orders()}
        assert statuses["w"] is OrderStatus.SETTLED
        assert statuses["l"] is OrderStatus.UNSETTLED

    def test_orders_by_bidder_and_len_and_clear(self, pool_index):
        book = OrderBook()
        book.submit(Bid.buy("a", pool_index, [{"alpha/cpu": 1}], max_payment=1.0))
        book.submit(Bid.buy("a", pool_index, [{"beta/cpu": 1}], max_payment=1.0))
        assert len(book.orders_by_bidder("a")) == 2
        assert len(book) == 2
        book.clear()
        assert len(book) == 0


class TestMarketSummary:
    def test_summary_rows_cover_all_clusters(self, pool_index):
        book = OrderBook()
        book.submit(Bid.buy("b", pool_index, [{"alpha/cpu": 1}], max_payment=1.0))
        prices = {name: 2.0 for name in pool_index.names}
        summary = build_market_summary(pool_index, book, prices, auction_id=3)
        assert {row.cluster for row in summary.rows} == {"alpha", "beta"}
        assert summary.auction_id == 3
        assert summary.total_active_orders() == 1
        row = summary.row_for("alpha")
        assert row.active_bids == 1
        assert row.cpu_price == 2.0
        assert row.cpu_utilization == pytest.approx(0.9)

    def test_row_for_unknown_cluster_raises(self, pool_index):
        summary = build_market_summary(pool_index, OrderBook(), {name: 1.0 for name in pool_index.names})
        with pytest.raises(KeyError):
            summary.row_for("gamma")

    def test_render_contains_cluster_names_and_truncation(self, pool_index):
        summary = build_market_summary(pool_index, OrderBook(), {name: 1.0 for name in pool_index.names})
        text = render_market_summary(summary)
        assert "alpha" in text and "beta" in text
        truncated = render_market_summary(summary, max_rows=1)
        assert "more clusters" in truncated
