"""Integration tests for the trading platform."""

import numpy as np
import pytest

from repro.bidlang import cluster_bundle, xor
from repro.core.bids import Bid
from repro.market.platform import BidWindowError, TradingPlatform
from repro.market.services import ServiceRequest


@pytest.fixture
def platform(pool_index):
    platform = TradingPlatform(pool_index)
    platform.register_team("buyer", budget=1_000_000.0)
    platform.register_team("seller", budget=10_000.0, initial_quota={"alpha/cpu": 200, "alpha/ram": 800})
    return platform


class TestRegistrationAndWindow:
    def test_register_team_opens_account_and_quota(self, platform):
        assert platform.ledger.balance("buyer") == 1_000_000.0
        assert platform.quotas.quota("seller", "alpha/cpu") == 200.0

    def test_register_existing_team_tops_up(self, platform):
        platform.register_team("buyer", budget=5.0)
        assert platform.ledger.balance("buyer") == 1_000_005.0

    def test_window_lifecycle(self, platform):
        assert not platform.window_open
        auction_id = platform.open_bid_window()
        assert platform.window_open and auction_id == 1
        with pytest.raises(BidWindowError):
            platform.open_bid_window()

    def test_operations_require_open_window(self, platform, pool_index):
        bid = Bid.buy("buyer", pool_index, [{"beta/cpu": 1}], max_payment=10.0)
        with pytest.raises(BidWindowError):
            platform.submit_bid(bid)
        with pytest.raises(BidWindowError):
            platform.run_preliminary()
        with pytest.raises(BidWindowError):
            platform.finalize_auction()


class TestQuoteAndSubmit:
    def test_quote_covers_requested_and_alternative_clusters(self, platform):
        platform.open_bid_window()
        ticket = platform.quote(
            "buyer", ServiceRequest("batch_compute", "alpha", 10), alternative_clusters=["beta"]
        )
        assert len(ticket.bundles) == 2
        assert ticket.estimated_cost == pytest.approx(min(ticket.bundle_costs()))
        assert all(name in ticket.component_prices for bundle in ticket.bundles for name in bundle)

    def test_submit_quoted_bid_enters_order_book(self, platform):
        platform.open_bid_window()
        ticket = platform.quote("buyer", ServiceRequest("web_serving", "beta", 5))
        order = platform.submit_quoted_bid(ticket, max_payment=ticket.estimated_cost * 1.5)
        assert order.bid.bidder == "buyer"
        assert len(platform.order_book) == 1
        assert order.bid.metadata["service"] == "web_serving"

    def test_submit_bid_rejects_over_budget(self, platform, pool_index):
        platform.open_bid_window()
        platform.register_team("pauper", budget=10.0)
        bid = Bid.buy("pauper", pool_index, [{"beta/cpu": 1}], max_payment=100.0)
        with pytest.raises(ValueError, match="budget"):
            platform.submit_bid(bid)

    def test_submit_sell_requires_quota(self, platform, pool_index):
        platform.open_bid_window()
        ok = Bid.sell("seller", pool_index, [{"alpha/cpu": 100}], min_revenue=10.0)
        platform.submit_bid(ok)
        too_much = Bid.sell("seller", pool_index, [{"alpha/cpu": 500}], min_revenue=10.0)
        with pytest.raises(ValueError, match="quota"):
            platform.submit_bid(too_much)

    def test_submit_tree_bid_validates_tree(self, platform):
        platform.open_bid_window()
        tree = xor(cluster_bundle("alpha", cpu=10, ram=40), cluster_bundle("beta", cpu=10, ram=40))
        order = platform.submit_tree_bid("buyer", tree, limit=5_000.0)
        assert len(order.bid.bundles) == 2
        from repro.bidlang import BidTreeValidationError, pool

        with pytest.raises(BidTreeValidationError):
            platform.submit_tree_bid("buyer", pool("nowhere/cpu", 1), limit=10.0)

    def test_negative_max_payment_rejected(self, platform):
        platform.open_bid_window()
        ticket = platform.quote("buyer", ServiceRequest("web_serving", "beta", 1))
        with pytest.raises(ValueError):
            platform.submit_quoted_bid(ticket, max_payment=-1.0)


class TestAuctionRuns:
    def _fill_orders(self, platform):
        platform.open_bid_window()
        ticket = platform.quote("buyer", ServiceRequest("batch_compute", "beta", 20))
        platform.submit_quoted_bid(ticket, max_payment=ticket.estimated_cost * 2.0)
        # Offer well under the 200-unit starting quota so two consecutive
        # windows can both be filled even if the first sale settles.
        platform.submit_bid(
            Bid.sell("seller", platform.index, [{"alpha/cpu": 60, "alpha/ram": 240}], min_revenue=100.0)
        )

    def test_preliminary_updates_displayed_prices(self, platform):
        self._fill_orders(platform)
        before = dict(platform.displayed_prices)
        table = platform.run_preliminary()
        assert platform.displayed_prices == table.as_map()
        assert platform.window_open  # preliminary runs do not close the window
        assert set(before) == set(platform.displayed_prices)

    def test_finalize_settles_budget_and_quota(self, platform):
        self._fill_orders(platform)
        buyer_before = platform.ledger.balance("buyer")
        record = platform.finalize_auction()
        assert not platform.window_open
        assert record.auction_id == 1
        assert platform.history == [record]
        buyer_line = record.result.settlement.line_for("buyer")
        if buyer_line.won:
            assert platform.ledger.balance("buyer") == pytest.approx(buyer_before - buyer_line.payment)
            assert platform.quotas.quota("buyer", "beta/cpu") > 0
        seller_line = record.result.settlement.line_for("seller")
        if seller_line.won:
            assert platform.quotas.quota("seller", "alpha/cpu") < 200.0
            assert platform.ledger.balance("seller") > 10_000.0

    def test_price_ratio_to_fixed(self, platform):
        self._fill_orders(platform)
        platform.finalize_auction()
        ratios = platform.price_ratio_to_fixed()
        assert set(ratios) == set(platform.fixed_prices)
        assert all(r >= 0 for r in ratios.values())

    def test_consecutive_auctions_increment_id(self, platform):
        self._fill_orders(platform)
        first = platform.finalize_auction()
        self._fill_orders(platform)
        second = platform.finalize_auction()
        assert (first.auction_id, second.auction_id) == (1, 2)

    def test_update_pool_index_requires_same_pools(self, platform, pool_index, three_cluster_index):
        updated = pool_index.with_utilizations(np.full(len(pool_index), 0.5))
        platform.update_pool_index(updated)
        assert platform.index.pool("alpha/cpu").utilization == 0.5
        with pytest.raises(ValueError):
            platform.update_pool_index(three_cluster_index)

    def test_market_summary_reflects_orders(self, platform):
        self._fill_orders(platform)
        summary = platform.market_summary()
        assert summary.total_active_orders() == 2
