"""Unit tests for operator decision support and budget-endowment planning."""

import numpy as np
import pytest

from repro.core.bids import Bid
from repro.core.exchange import CombinatorialExchange
from repro.core.reserve import PAPER_PHI_1, FlatWeight, ReservePricer
from repro.market.decision_support import (
    CapacityAction,
    DecisionSupportConfig,
    apply_recommendations,
    recommend_capacity_actions,
    summarize_actions,
)
from repro.market.endowment import (
    EndowmentPolicy,
    endowment_impact_bound,
    plan_endowments,
)


def run_congested_auction(pool_index):
    """An auction where the congested cluster (alpha) is heavily over-demanded."""
    bids = []
    for i in range(8):
        bundle = {"alpha/cpu": 60.0, "alpha/ram": 240.0}
        cost = sum(q * pool_index.pool(k).unit_cost for k, q in bundle.items())
        bids.append(Bid.buy(f"hot-{i}", pool_index, [bundle], max_payment=cost * 6.0))
    # one modest bid on the idle cluster so it trades but stays cheap
    bids.append(Bid.buy("cold", pool_index, [{"beta/cpu": 10.0}], max_payment=1e6))
    return CombinatorialExchange(pool_index).run(bids)


class TestDecisionSupport:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DecisionSupportConfig(grow_price_ratio=0.5, reclaim_price_ratio=0.8)
        with pytest.raises(ValueError):
            DecisionSupportConfig(grow_utilization=0.2, reclaim_utilization=0.5)
        with pytest.raises(ValueError):
            DecisionSupportConfig(growth_headroom=0.5)
        with pytest.raises(ValueError):
            DecisionSupportConfig(reclaim_fraction=0.0)

    def test_requires_results(self):
        with pytest.raises(ValueError):
            recommend_capacity_actions([])

    def test_congested_pool_flagged_for_growth(self, pool_index):
        result = run_congested_auction(pool_index)
        recommendations = {r.pool: r for r in recommend_capacity_actions(result)}
        alpha_cpu = recommendations["alpha/cpu"]
        assert alpha_cpu.action is CapacityAction.GROW
        assert alpha_cpu.suggested_delta > 0
        assert alpha_cpu.price_to_cost > 1.5

    def test_idle_cheap_pool_flagged_for_reclaim(self, pool_index):
        result = run_congested_auction(pool_index)
        recommendations = {r.pool: r for r in recommend_capacity_actions(result)}
        beta_disk = recommendations["beta/disk"]
        assert beta_disk.action is CapacityAction.RECLAIM
        assert beta_disk.suggested_delta < 0

    def test_summarize_counts_all_pools(self, pool_index):
        result = run_congested_auction(pool_index)
        recommendations = recommend_capacity_actions(result)
        counts = summarize_actions(recommendations)
        assert sum(counts.values()) == len(pool_index)
        assert counts["grow"] >= 1 and counts["reclaim"] >= 1

    def test_mixed_index_results_rejected(self, pool_index, three_cluster_index):
        a = run_congested_auction(pool_index)
        b = CombinatorialExchange(three_cluster_index).run([])
        with pytest.raises(ValueError):
            recommend_capacity_actions([a, b])

    def test_apply_recommendations_grows_capacity_and_preserves_used(self, pool_index):
        result = run_congested_auction(pool_index)
        recommendations = recommend_capacity_actions(result)
        grown = apply_recommendations(pool_index, recommendations, only=CapacityAction.GROW)
        old = pool_index.pool("alpha/cpu")
        new = grown.pool("alpha/cpu")
        assert new.capacity > old.capacity
        assert new.capacity * new.utilization == pytest.approx(old.capacity * old.utilization, rel=1e-6)
        # non-grow pools untouched when filtering
        assert grown.pool("beta/disk").capacity == pool_index.pool("beta/disk").capacity

    def test_apply_all_recommendations_reclaims_idle_capacity(self, pool_index):
        result = run_congested_auction(pool_index)
        recommendations = recommend_capacity_actions(result)
        updated = apply_recommendations(pool_index, recommendations)
        assert updated.pool("beta/disk").capacity < pool_index.pool("beta/disk").capacity


class TestEndowmentPlanning:
    def test_equal_split(self, pool_index):
        plan = plan_endowments(pool_index, ["a", "b", "c", "d"], 1000.0)
        assert plan.policy is EndowmentPolicy.EQUAL
        assert all(v == pytest.approx(250.0) for v in plan.shares.values())
        assert plan.share_of("ghost") == 0.0
        assert sum(plan.as_fractions().values()) == pytest.approx(1.0)

    def test_usage_proportional(self, pool_index):
        usage = {
            "big": {"alpha/cpu": 100},  # cost-weighted value 1000
            "small": {"alpha/cpu": 10},  # 100
        }
        plan = plan_endowments(
            pool_index, usage, 1100.0, policy=EndowmentPolicy.USAGE_PROPORTIONAL
        )
        assert plan.share_of("big") == pytest.approx(1000.0)
        assert plan.share_of("small") == pytest.approx(100.0)

    def test_usage_at_reserve_favors_congested_tenants(self, pool_index):
        usage = {
            "congested-tenant": {"alpha/cpu": 10},
            "idle-tenant": {"beta/cpu": 10},
        }
        proportional = plan_endowments(
            pool_index, usage, 1000.0, policy=EndowmentPolicy.USAGE_PROPORTIONAL
        )
        at_reserve = plan_endowments(
            pool_index, usage, 1000.0, policy=EndowmentPolicy.USAGE_AT_RESERVE
        )
        # same usage value at cost -> equal split under proportional
        assert proportional.share_of("congested-tenant") == pytest.approx(500.0)
        # reserve pricing values the congested cluster higher
        assert at_reserve.share_of("congested-tenant") > at_reserve.share_of("idle-tenant")
        # total is always fully disbursed
        assert sum(at_reserve.shares.values()) == pytest.approx(1000.0)

    def test_zero_usage_falls_back_to_equal(self, pool_index):
        plan = plan_endowments(
            pool_index, {"a": {}, "b": {}}, 100.0, policy=EndowmentPolicy.USAGE_PROPORTIONAL
        )
        assert plan.share_of("a") == plan.share_of("b") == 50.0

    def test_validation(self, pool_index):
        with pytest.raises(ValueError):
            plan_endowments(pool_index, [], 100.0)
        with pytest.raises(ValueError):
            plan_endowments(pool_index, ["a"], -1.0)

    def test_endowment_impact_bound(self, pool_index):
        weighted = endowment_impact_bound(pool_index, ReservePricer(weighting=PAPER_PHI_1))
        flat = endowment_impact_bound(pool_index, ReservePricer(weighting=FlatWeight(1.0)))
        assert flat == pytest.approx(1.0)
        assert weighted > 1.0
        # bounded by phi(1)/phi(0) = e^2 for the paper's phi_1
        assert weighted <= np.exp(2.0) + 1e-9
