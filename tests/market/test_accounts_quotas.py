"""Unit tests for the budget ledger and the quota registry."""

import numpy as np
import pytest

from repro.core.bids import Bid
from repro.core.settlement import settle
from repro.market.accounts import InsufficientBudgetError, Ledger
from repro.market.quotas import QuotaError, QuotaRegistry, endow_from_usage


class TestLedger:
    def test_open_account_with_endowment(self):
        ledger = Ledger()
        ledger.open_account("ads", endowment=1000.0)
        assert ledger.balance("ads") == 1000.0
        assert ledger.transactions("ads")[0].kind == "endowment"

    def test_duplicate_account_rejected(self):
        ledger = Ledger()
        ledger.open_account("ads")
        with pytest.raises(ValueError):
            ledger.open_account("ads")

    def test_negative_endowment_rejected(self):
        with pytest.raises(ValueError):
            Ledger().open_account("x", endowment=-1.0)

    def test_unknown_account_raises(self):
        with pytest.raises(KeyError):
            Ledger().balance("ghost")

    def test_credit_and_debit(self):
        ledger = Ledger()
        ledger.open_account("t", endowment=100.0)
        ledger.debit("t", 40.0)
        ledger.credit("t", 15.0)
        assert ledger.balance("t") == pytest.approx(75.0)

    def test_debit_beyond_balance_raises(self):
        ledger = Ledger()
        ledger.open_account("t", endowment=10.0)
        with pytest.raises(InsufficientBudgetError):
            ledger.debit("t", 20.0)

    def test_debit_with_overdraft_allowed(self):
        ledger = Ledger()
        ledger.open_account("t", endowment=10.0)
        ledger.debit("t", 20.0, allow_overdraft=True)
        assert ledger.balance("t") == pytest.approx(-10.0)

    def test_negative_amounts_rejected(self):
        ledger = Ledger()
        ledger.open_account("t", endowment=10.0)
        with pytest.raises(ValueError):
            ledger.credit("t", -1.0)
        with pytest.raises(ValueError):
            ledger.debit("t", -1.0)

    def test_post_settlement_debits_buyers_credits_sellers(self):
        ledger = Ledger()
        ledger.open_account("buyer", endowment=100.0)
        ledger.open_account("seller", endowment=0.0)
        ledger.post_settlement("buyer", 30.0, auction_id=1)
        ledger.post_settlement("seller", -25.0, auction_id=1)
        assert ledger.balance("buyer") == pytest.approx(70.0)
        assert ledger.balance("seller") == pytest.approx(25.0)
        assert all(t.auction_id == 1 for t in ledger.transactions() if t.kind == "settlement")

    def test_transfer_moves_money(self):
        ledger = Ledger()
        ledger.open_account("a", endowment=50.0)
        ledger.open_account("b")
        ledger.transfer("a", "b", 20.0)
        assert ledger.balance("a") == 30.0
        assert ledger.balance("b") == 20.0

    def test_total_outstanding_is_conserved_by_transfers(self):
        ledger = Ledger()
        ledger.endow_equally(["a", "b", "c"], total_budget=300.0)
        before = ledger.total_outstanding()
        ledger.transfer("a", "b", 50.0)
        assert ledger.total_outstanding() == pytest.approx(before)

    def test_endow_equally_splits_budget(self):
        ledger = Ledger()
        ledger.endow_equally(["a", "b"], total_budget=100.0)
        assert ledger.balance("a") == ledger.balance("b") == 50.0
        # calling again tops up existing accounts
        ledger.endow_equally(["a", "b"], total_budget=50.0)
        assert ledger.balance("a") == 75.0


class TestQuotaRegistry:
    def test_grant_and_lookup(self, pool_index):
        registry = QuotaRegistry(index=pool_index)
        registry.grant("ads", {"alpha/cpu": 100, "alpha/ram": 400})
        assert registry.quota("ads", "alpha/cpu") == 100.0
        assert registry.quota("ads", "beta/cpu") == 0.0
        assert registry.holdings_map("ads") == {"alpha/cpu": 100.0, "alpha/ram": 400.0}

    def test_unknown_team_has_zero_quota(self, pool_index):
        registry = QuotaRegistry(index=pool_index)
        assert registry.quota("ghost", "alpha/cpu") == 0.0

    def test_negative_grant_rejected(self, pool_index):
        registry = QuotaRegistry(index=pool_index)
        with pytest.raises(QuotaError):
            registry.grant("ads", {"alpha/cpu": -10})

    def test_apply_delta_protects_against_negative_holdings(self, pool_index):
        registry = QuotaRegistry(index=pool_index)
        registry.grant("ads", {"alpha/cpu": 10})
        delta = pool_index.vector({"alpha/cpu": -20})
        with pytest.raises(QuotaError):
            registry.apply_delta("ads", delta)
        registry.apply_delta("ads", delta, allow_negative=True)
        assert registry.quota("ads", "alpha/cpu") == pytest.approx(-10.0)

    def test_apply_settlement_updates_winners_only(self, pool_index):
        bids = [
            Bid.buy("winner", pool_index, [{"alpha/cpu": 10}], max_payment=1e6),
            Bid.buy("loser", pool_index, [{"alpha/cpu": 10}], max_payment=0.0),
        ]
        settlement = settle(pool_index, bids, np.ones(len(pool_index)))
        registry = QuotaRegistry(index=pool_index)
        registry.apply_settlement(settlement)
        assert registry.quota("winner", "alpha/cpu") == 10.0
        assert registry.quota("loser", "alpha/cpu") == 0.0

    def test_apply_settlement_rejects_foreign_index(self, pool_index, three_cluster_index):
        settlement = settle(three_cluster_index, [], np.ones(len(three_cluster_index)))
        registry = QuotaRegistry(index=pool_index)
        with pytest.raises(ValueError):
            registry.apply_settlement(settlement)

    def test_can_offer(self, pool_index):
        registry = QuotaRegistry(index=pool_index)
        registry.grant("ads", {"alpha/cpu": 50})
        assert registry.can_offer("ads", {"alpha/cpu": 40})
        assert registry.can_offer("ads", {"alpha/cpu": -40})  # sign-insensitive
        assert not registry.can_offer("ads", {"alpha/cpu": 60})
        assert not registry.can_offer("ads", {"beta/cpu": 1})

    def test_total_provisioned_and_overcommitment(self, pool_index):
        registry = QuotaRegistry(index=pool_index)
        registry.grant("a", {"alpha/cpu": 600})
        registry.grant("b", {"alpha/cpu": 600})
        total = registry.total_provisioned()
        assert total[pool_index.index_of("alpha/cpu")] == 1200.0
        over = registry.overcommitment()
        assert over[pool_index.index_of("alpha/cpu")] == pytest.approx(1200.0 - pool_index.pool("alpha/cpu").capacity)

    def test_utilization_of_quota(self, pool_index):
        registry = QuotaRegistry(index=pool_index)
        registry.grant("a", {"alpha/cpu": 100})
        usage = {"a": {"alpha/cpu": 25.0}}
        assert registry.utilization_of_quota(usage)["a"] == pytest.approx(0.25)

    def test_endow_from_usage(self, pool_index):
        registry = endow_from_usage(pool_index, {"a": {"alpha/cpu": 10}, "b": {"beta/disk": 500}})
        assert registry.quota("a", "alpha/cpu") == 10.0
        assert registry.quota("b", "beta/disk") == 500.0
        snapshot = registry.snapshot()
        assert snapshot["a"] == {"alpha/cpu": 10.0}
