"""Unit tests for the traditional-allocation baselines and the comparison metrics."""

import numpy as np
import pytest

from repro.baselines.comparison import (
    allocation_metrics,
    compare_outcomes,
    market_outcome_from_quota_delta,
    market_outcome_from_settlement,
    requests_from_demands,
)
from repro.baselines.fixed_price import FixedPriceAllocator
from repro.baselines.lottery import LotteryAllocator
from repro.baselines.priority import PriorityAllocator
from repro.baselines.proportional import ProportionalShareAllocator
from repro.baselines.requests import AllocationOutcome, QuotaRequest
from repro.core.bids import Bid
from repro.core.settlement import settle
from tests.conftest import build_pool_index


@pytest.fixture
def idle_index():
    """Two clusters, both half empty, with round capacities for easy math."""
    return build_pool_index({"alpha": 0.5, "beta": 0.5}, capacity_scale=1000.0)


class TestQuotaRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            QuotaRequest(team="", quantities={"a/cpu": 1})
        with pytest.raises(ValueError):
            QuotaRequest(team="t", quantities={})
        with pytest.raises(ValueError):
            QuotaRequest(team="t", quantities={"a/cpu": -1})

    def test_vector(self, idle_index):
        request = QuotaRequest(team="t", quantities={"alpha/cpu": 10})
        assert request.vector(idle_index)[idle_index.index_of("alpha/cpu")] == 10.0

    def test_unknown_pool_rejected_by_allocators(self, idle_index):
        request = QuotaRequest(team="t", quantities={"nowhere/cpu": 10})
        with pytest.raises(KeyError):
            FixedPriceAllocator().allocate(idle_index, [request])


class TestFixedPriceAllocator:
    def test_grants_until_capacity_exhausted(self, idle_index):
        # available alpha/cpu = 500; three requests of 200 arrive in order
        requests = [QuotaRequest(team=f"t{i}", quantities={"alpha/cpu": 200}) for i in range(3)]
        outcome = FixedPriceAllocator().allocate(idle_index, requests)
        assert outcome.grant_fraction("t0") == 1.0
        assert outcome.grant_fraction("t1") == 1.0
        assert outcome.grant_fraction("t2") == pytest.approx(0.5)  # only 100 left
        assert outcome.shortage()[idle_index.index_of("alpha/cpu")] == pytest.approx(100.0)

    def test_all_or_nothing_mode(self, idle_index):
        requests = [QuotaRequest(team=f"t{i}", quantities={"alpha/cpu": 300}) for i in range(2)]
        outcome = FixedPriceAllocator(partial_grants=False).allocate(idle_index, requests)
        assert outcome.grant_fraction("t0") == 1.0
        assert outcome.grant_fraction("t1") == 0.0

    def test_idle_cluster_keeps_surplus(self, idle_index):
        requests = [QuotaRequest(team="t", quantities={"alpha/cpu": 100})]
        outcome = FixedPriceAllocator().allocate(idle_index, requests)
        surplus = outcome.surplus()
        assert surplus[idle_index.index_of("beta/cpu")] == pytest.approx(500.0)
        assert surplus[idle_index.index_of("alpha/cpu")] == pytest.approx(400.0)


class TestProportionalShareAllocator:
    def test_scales_down_oversubscribed_pool_uniformly(self, idle_index):
        requests = [QuotaRequest(team=f"t{i}", quantities={"alpha/cpu": 500}) for i in range(2)]
        outcome = ProportionalShareAllocator().allocate(idle_index, requests)
        # total demand 1000 against 500 available -> everyone gets half
        assert outcome.grant_fraction("t0") == pytest.approx(0.5)
        assert outcome.grant_fraction("t1") == pytest.approx(0.5)
        assert outcome.fully_satisfied_teams() == []

    def test_undersubscribed_pool_fully_granted(self, idle_index):
        requests = [QuotaRequest(team="t", quantities={"beta/ram": 100})]
        outcome = ProportionalShareAllocator().allocate(idle_index, requests)
        assert outcome.grant_fraction("t") == 1.0

    def test_empty_request_list(self, idle_index):
        outcome = ProportionalShareAllocator().allocate(idle_index, [])
        assert outcome.teams() == []
        assert not np.any(outcome.total_granted())


class TestPriorityAllocator:
    def test_higher_priority_served_first(self, idle_index):
        requests = [
            QuotaRequest(team="low", quantities={"alpha/cpu": 400}, priority=0),
            QuotaRequest(team="high", quantities={"alpha/cpu": 400}, priority=5),
        ]
        outcome = PriorityAllocator().allocate(idle_index, requests)
        assert outcome.grant_fraction("high") == 1.0
        assert outcome.grant_fraction("low") == pytest.approx(0.25)  # 100 of 400 left

    def test_arrival_order_breaks_ties(self, idle_index):
        requests = [
            QuotaRequest(team="first", quantities={"alpha/cpu": 400}, priority=1),
            QuotaRequest(team="second", quantities={"alpha/cpu": 400}, priority=1),
        ]
        outcome = PriorityAllocator().allocate(idle_index, requests)
        assert outcome.grant_fraction("first") == 1.0
        assert outcome.grant_fraction("second") < 1.0


class TestLotteryAllocator:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            QuotaRequest(team="t", quantities={"a/cpu": 1}, weight=-1.0)

    def test_deterministic_given_seed(self, idle_index):
        requests = [
            QuotaRequest(team=f"t{i}", quantities={"alpha/cpu": 300}, weight=float(i + 1))
            for i in range(4)
        ]
        a = LotteryAllocator(seed=3).allocate(idle_index, requests)
        b = LotteryAllocator(seed=3).allocate(idle_index, requests)
        for team in a.teams():
            np.testing.assert_array_equal(a.granted[team], b.granted[team])

    def test_different_seeds_draw_different_orders(self, idle_index):
        requests = [
            QuotaRequest(team=f"t{i}", quantities={"alpha/cpu": 300}) for i in range(6)
        ]
        grants = set()
        for seed in range(8):
            outcome = LotteryAllocator(seed=seed).allocate(idle_index, requests)
            grants.add(tuple(round(outcome.grant_fraction(t), 6) for t in sorted(outcome.teams())))
        assert len(grants) > 1  # the order (hence who is rationed) varies

    def test_budget_weight_biases_the_draw(self, idle_index):
        # One whale vs one minnow contending for a pool that fits only one
        # full request: across many draws the whale must win far more often.
        requests = [
            QuotaRequest(team="whale", quantities={"alpha/cpu": 400}, weight=1000.0),
            QuotaRequest(team="minnow", quantities={"alpha/cpu": 400}, weight=1.0),
        ]
        whale_wins = sum(
            LotteryAllocator(seed=seed).allocate(idle_index, requests).grant_fraction("whale") == 1.0
            for seed in range(100)
        )
        assert whale_wins > 90

    def test_zero_weight_requests_sort_last(self, idle_index):
        requests = [
            QuotaRequest(team="broke", quantities={"alpha/cpu": 400}, weight=0.0),
            QuotaRequest(team="funded", quantities={"alpha/cpu": 400}, weight=5.0),
        ]
        for seed in range(10):
            outcome = LotteryAllocator(seed=seed).allocate(idle_index, requests)
            assert outcome.grant_fraction("funded") == 1.0

    def test_reseed_pins_the_stream(self, idle_index):
        requests = [
            QuotaRequest(team=f"t{i}", quantities={"alpha/cpu": 300}) for i in range(4)
        ]
        a = LotteryAllocator()
        a.reseed(np.random.default_rng(42))
        b = LotteryAllocator()
        b.reseed(np.random.default_rng(42))
        oa = a.allocate(idle_index, requests)
        ob = b.allocate(idle_index, requests)
        for team in oa.teams():
            np.testing.assert_array_equal(oa.granted[team], ob.granted[team])

    def test_empty_request_list(self, idle_index):
        outcome = LotteryAllocator().allocate(idle_index, [])
        assert outcome.teams() == []


class TestAllocationOutcomeAndMetrics:
    def test_record_accumulates(self, idle_index):
        outcome = AllocationOutcome(index=idle_index, policy="x")
        vec = idle_index.vector({"alpha/cpu": 10})
        outcome.record("t", vec, vec)
        outcome.record("t", vec, vec * 0.5)
        assert outcome.requested["t"][idle_index.index_of("alpha/cpu")] == 20.0
        assert outcome.granted["t"][idle_index.index_of("alpha/cpu")] == 15.0

    def test_metrics_on_fully_satisfied_outcome(self, idle_index):
        requests = [QuotaRequest(team="t", quantities={"alpha/cpu": 100})]
        outcome = FixedPriceAllocator().allocate(idle_index, requests)
        metrics = allocation_metrics(outcome)
        assert metrics.shortage_cost == pytest.approx(0.0)
        assert metrics.satisfied_fraction == 1.0
        assert metrics.grant_rate == pytest.approx(1.0)
        assert metrics.policy == "fixed_price_fcfs"

    def test_metrics_detect_shortage(self, idle_index):
        requests = [QuotaRequest(team="t", quantities={"alpha/cpu": 800})]
        metrics = allocation_metrics(FixedPriceAllocator().allocate(idle_index, requests))
        # 300 CPU unmet at unit cost 10
        assert metrics.shortage_cost == pytest.approx(3000.0)
        assert metrics.satisfied_fraction == 0.0

    def test_relocated_grant_counts_as_satisfied(self, idle_index):
        # market-style outcome: requested in alpha, granted the equivalent in beta
        outcome = AllocationOutcome(index=idle_index, policy="market")
        outcome.record(
            "t",
            idle_index.vector({"alpha/cpu": 100}),
            idle_index.vector({"beta/cpu": 100}),
        )
        metrics = allocation_metrics(outcome)
        assert metrics.shortage_cost == pytest.approx(0.0)
        assert metrics.satisfied_fraction == 1.0

    def test_compare_outcomes_keys_by_policy(self, idle_index):
        requests = [QuotaRequest(team="t", quantities={"alpha/cpu": 100})]
        outcomes = [
            FixedPriceAllocator().allocate(idle_index, requests),
            ProportionalShareAllocator().allocate(idle_index, requests),
        ]
        metrics = compare_outcomes(outcomes)
        assert set(metrics) == {"fixed_price_fcfs", "proportional_share"}

    def test_requests_from_demands(self, idle_index):
        requests = requests_from_demands(
            idle_index, {"a": {"alpha/cpu": 5}, "b": {}}, priorities={"a": 2}
        )
        assert len(requests) == 1
        assert requests[0].priority == 2


class TestMarketOutcomes:
    def test_from_settlement_uses_requests_for_losers(self, idle_index):
        bids = [
            Bid.buy("winner", idle_index, [{"alpha/cpu": 10}], max_payment=1e6),
            Bid.buy("loser", idle_index, [{"alpha/cpu": 10}], max_payment=0.0),
        ]
        settlement = settle(idle_index, bids, np.ones(len(idle_index)))
        requests = [
            QuotaRequest(team="winner", quantities={"alpha/cpu": 10}),
            QuotaRequest(team="loser", quantities={"alpha/cpu": 10}),
        ]
        outcome = market_outcome_from_settlement(settlement, requests)
        assert outcome.grant_fraction("winner") == 1.0
        assert outcome.grant_fraction("loser") == 0.0

    def test_from_quota_delta(self, idle_index):
        requests = [QuotaRequest(team="t", quantities={"alpha/cpu": 100})]
        initial = {"t": {"alpha/cpu": 20.0}}
        final = {"t": {"alpha/cpu": 80.0, "beta/cpu": 40.0}}
        outcome = market_outcome_from_quota_delta(idle_index, requests, initial, final)
        granted = outcome.granted["t"]
        assert granted[idle_index.index_of("alpha/cpu")] == pytest.approx(60.0)
        assert granted[idle_index.index_of("beta/cpu")] == pytest.approx(40.0)
        # cost-weighted: requested 100 CPU, acquired 100 CPU worth -> satisfied
        metrics = allocation_metrics(outcome)
        assert metrics.satisfied_fraction == 1.0

    def test_from_quota_delta_ignores_sold_quota(self, idle_index):
        outcome = market_outcome_from_quota_delta(
            idle_index,
            [QuotaRequest(team="t", quantities={"alpha/cpu": 10})],
            {"t": {"alpha/cpu": 100.0}},
            {"t": {"alpha/cpu": 40.0}},
        )
        assert not np.any(outcome.granted["t"])

    def test_from_quota_delta_includes_unrequested_acquirers(self, idle_index):
        outcome = market_outcome_from_quota_delta(
            idle_index, [], {}, {"newcomer": {"beta/cpu": 10.0}}
        )
        assert "newcomer" in outcome.teams()
