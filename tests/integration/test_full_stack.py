"""Full-stack integration tests: fleet -> platform -> agents -> auctions -> analysis.

These exercise the same paths the examples and benchmarks use, at a reduced
scale, and assert the cross-cutting invariants that only show up when all
layers run together (budget conservation, quota consistency, reproducibility).
"""

import numpy as np
import pytest

from repro.analysis.premium import premium_trend
from repro.analysis.settlement_stats import settlement_by_strategy
from repro.analysis.utilization_stats import figure7_boxplots
from repro.simulation.economy import MarketEconomySimulation
from repro.simulation.scenario import small_scenario


@pytest.fixture(scope="module")
def economy():
    scenario = small_scenario(seed=13, team_count=30, cluster_count=8)
    sim = MarketEconomySimulation(scenario)
    history = sim.run(4)
    return scenario, history


class TestEconomyInvariants:
    def test_all_auctions_converge_and_satisfy_constraints(self, economy):
        _, history = economy
        for period in history.periods:
            result = period.record.result
            assert result.outcome.converged
            assert result.constraints.satisfied, result.constraints.violations

    def test_budget_dollars_are_conserved_up_to_operator_flows(self, economy):
        scenario, history = economy
        ledger = scenario.platform.ledger
        endowed = sum(
            t.amount for t in ledger.transactions() if t.kind == "endowment"
        )
        operator_net = sum(
            period.settlement.total_payments() for period in history.periods
        )
        total_balances = ledger.total_outstanding()
        # every budget dollar is either still on an account or was paid (net) to the operator
        assert total_balances + operator_net == pytest.approx(endowed, rel=1e-9)

    def test_no_team_ends_with_negative_quota(self, economy):
        scenario, _ = economy
        for team, holdings in scenario.platform.quotas.snapshot().items():
            for pool_name, quantity in holdings.items():
                assert quantity >= -1e-6, f"{team} has negative quota in {pool_name}"

    def test_winning_buyers_acquired_quota(self, economy):
        scenario, history = economy
        quotas = scenario.platform.quotas
        last = history.periods[-1].settlement
        for line in last.winners:
            bought = np.clip(line.allocation, 0.0, None)
            if bought.sum() > 0:
                holdings = quotas.quota_vector(line.bidder)
                assert np.all(holdings + 1e-9 >= 0)

    def test_settled_trades_feed_figure7(self, economy):
        _, history = economy
        boxes = figure7_boxplots(history.settlements())
        assert boxes, "pooled settlements must produce at least one boxplot group"
        for stats in boxes.values():
            assert 0.0 <= stats.minimum <= stats.maximum <= 100.0

    def test_premiums_trend_downward_with_learning(self, economy):
        _, history = economy
        trend = premium_trend(history.premium_rows())
        assert trend["median_last"] <= trend["median_first"] + 1e-9

    def test_strategy_breakdown_covers_all_bidders(self, economy):
        _, history = economy
        period = history.periods[0]
        bids = period.record.result.settlement  # settlement lines count
        breakdown = settlement_by_strategy(
            period.settlement,
            [],  # no metadata available -> grouped as unknown
        )
        assert sum(int(stats["bidders"]) for stats in breakdown.values()) == len(bids.lines)


class TestReproducibility:
    def test_same_seed_gives_identical_prices(self):
        def run(seed):
            scenario = small_scenario(seed=seed, team_count=15, cluster_count=5)
            sim = MarketEconomySimulation(scenario)
            history = sim.run(2)
            return [period.record.prices for period in history.periods]

        assert run(99) == run(99)

    def test_different_seeds_differ(self):
        def run(seed):
            scenario = small_scenario(seed=seed, team_count=15, cluster_count=5)
            sim = MarketEconomySimulation(scenario)
            return sim.run(1).periods[0].record.prices

        assert run(1) != run(2)
