"""Property-style scalar-vs-batch equivalence over random bid populations.

The batch demand engine must be observationally indistinguishable from the
scalar proxy loop: for any bid population — pure buyers, sellers, traders, or
any mix — both engines must produce the same price trajectory, the same
per-round excess demand, the same final demands, and the same convergence
behavior (including raising :class:`ConvergenceError` on the same instances).
"""

import numpy as np
import pytest

from repro.core.bids import Bid
from repro.core.bundles import BundleSet
from repro.core.clock_auction import (
    AscendingClockAuction,
    AuctionConfig,
    ConvergenceError,
)


def random_population(pool_index, rng, *, buyers, sellers, traders):
    names = pool_index.names
    bids = []
    for i in range(buyers):
        bundles = []
        for _ in range(int(rng.integers(1, 5))):
            width = int(rng.integers(1, min(3, len(names)) + 1))
            chosen = rng.choice(names, size=width, replace=False)
            bundles.append({str(n): float(rng.uniform(0.5, 300)) for n in chosen})
        bids.append(
            Bid.buy(f"buyer-{i}", pool_index, bundles, max_payment=float(rng.uniform(10, 8000)))
        )
    for i in range(sellers):
        name = str(rng.choice(names))
        bids.append(
            Bid.sell(
                f"seller-{i}",
                pool_index,
                [{name: float(rng.uniform(5, 150))}],
                min_revenue=float(rng.uniform(0, 80)),
            )
        )
    for i in range(traders):
        a, b = (str(n) for n in rng.choice(names, size=2, replace=False))
        qty = float(rng.uniform(1, 25))
        bids.append(
            Bid(
                bidder=f"trader-{i}",
                bundles=BundleSet(pool_index, [{a: qty, b: -qty}, {a: -qty, b: qty}]),
                limit=float(rng.uniform(0, 50)),
            )
        )
    return bids


def run_engine(pool_index, bids, engine, *, max_rounds=3000):
    auction = AscendingClockAuction(
        pool_index,
        bids,
        reserve_prices=np.ones(len(pool_index)),
        supply=np.full(len(pool_index), 40.0),
        config=AuctionConfig(engine=engine, max_rounds=max_rounds, record_bidder_demands=True),
    )
    try:
        return auction.run()
    except ConvergenceError:
        return None


def assert_equivalent(scalar, batch):
    if scalar is None or batch is None:
        # Non-convergence must be engine-independent.
        assert scalar is None and batch is None
        return
    assert scalar.round_count == batch.round_count
    np.testing.assert_array_equal(scalar.final_prices, batch.final_prices)
    assert scalar.final_demands.keys() == batch.final_demands.keys()
    for bidder, demand in scalar.final_demands.items():
        np.testing.assert_array_equal(demand, batch.final_demands[bidder])
    for rs, rb in zip(scalar.rounds, batch.rounds):
        np.testing.assert_array_equal(rs.prices, rb.prices)
        np.testing.assert_array_equal(rs.excess_demand, rb.excess_demand)
        assert rs.active_bidders == rb.active_bidders
        for bidder, demand in rs.bidder_demands.items():
            np.testing.assert_array_equal(demand, rb.bidder_demands[bidder])


@pytest.mark.parametrize("seed", range(8))
def test_random_buyer_populations_are_engine_invariant(pool_index, seed):
    rng = np.random.default_rng(1000 + seed)
    bids = random_population(pool_index, rng, buyers=int(rng.integers(5, 40)), sellers=0, traders=0)
    assert_equivalent(
        run_engine(pool_index, bids, "scalar"), run_engine(pool_index, bids, "batch")
    )


@pytest.mark.parametrize("seed", range(8))
def test_random_mixed_populations_are_engine_invariant(pool_index, seed):
    rng = np.random.default_rng(2000 + seed)
    bids = random_population(
        pool_index,
        rng,
        buyers=int(rng.integers(5, 30)),
        sellers=int(rng.integers(1, 8)),
        traders=int(rng.integers(0, 4)),
    )
    assert_equivalent(
        run_engine(pool_index, bids, "scalar"), run_engine(pool_index, bids, "batch")
    )


@pytest.mark.parametrize("seed", range(4))
def test_three_cluster_index_equivalence(three_cluster_index, seed):
    rng = np.random.default_rng(3000 + seed)
    bids = random_population(three_cluster_index, rng, buyers=25, sellers=5, traders=2)
    assert_equivalent(
        run_engine(three_cluster_index, bids, "scalar"),
        run_engine(three_cluster_index, bids, "batch"),
    )


def test_nonconvergent_trader_raises_in_both_engines(pool_index):
    # The oscillating trader from the scalar unit tests: never drops out,
    # whichever pool it demands gets raised, forever.  Both engines must hit
    # the round limit and raise.
    trader = Bid(
        bidder="loop",
        bundles=BundleSet(
            pool_index,
            [{"alpha/cpu": 10, "beta/cpu": -10}, {"alpha/cpu": -10, "beta/cpu": 10}],
        ),
        limit=0.0,
    )
    for engine in ("scalar", "batch"):
        auction = AscendingClockAuction(
            pool_index,
            [trader],
            reserve_prices=np.ones(len(pool_index)),
            config=AuctionConfig(engine=engine, max_rounds=150),
        )
        with pytest.raises(ConvergenceError):
            auction.run()


def test_auto_engine_trace_matches_forced_engines(pool_index):
    rng = np.random.default_rng(4000)
    bids = random_population(pool_index, rng, buyers=40, sellers=4, traders=0)  # >= threshold
    auto = run_engine(pool_index, bids, "auto")
    scalar = run_engine(pool_index, bids, "scalar")
    batch = run_engine(pool_index, bids, "batch")
    assert_equivalent(scalar, batch)
    assert_equivalent(scalar, auto)
