"""Property-based tests (hypothesis) for the incremental demand kernel.

The incremental engine's correctness argument has three legs, each pinned
here over randomly generated bid populations and randomly generated monotone
price paths (including zero-step rounds, where no pool moves at all):

* delta evaluation is *bitwise* equal to a full re-evaluation: at every
  round along the path, :meth:`IncrementalDemandState.respond_delta` must
  reproduce exactly the quantities, totals, activity flags, chosen bundles,
  and costs that a fresh :meth:`BatchDemandEngine.respond_all` computes at
  the same prices;
* retirement is permanent and sound: once a pure buyer drops out its rows
  leave the active set for good (the retired mask only ever grows), while
  sellers and traders are never retired — they may re-enter as prices rise;
* the running total-demand vector, patched per changed pool, equals
  ``np.add.reduce`` over all demand rows after every round.

Quantities, prices, and limits are drawn as integers scaled to floats, so
every bundle cost is exact in float64 and the bitwise claims are not
confounded by the knife-edge ULP qualification documented in
``repro.core.batch`` (which the catalog-preset equivalence harness covers
for realistic float populations).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.pools import PoolIndex, ResourcePool
from repro.cluster.resources import ResourceType
from repro.core.batch import BatchDemandEngine, sum_demand_rows
from repro.core.bids import Bid
from repro.core.bundles import BundleSet

# A fixed two-cluster index so hypothesis explores bid and price-path space,
# not fleet space.
_POOLS = PoolIndex(
    [
        ResourcePool(cluster="c0", rtype=ResourceType.CPU, capacity=1_000.0, unit_cost=10.0, utilization=0.9),
        ResourcePool(cluster="c0", rtype=ResourceType.RAM, capacity=4_000.0, unit_cost=2.0, utilization=0.85),
        ResourcePool(cluster="c1", rtype=ResourceType.CPU, capacity=1_000.0, unit_cost=10.0, utilization=0.5),
        ResourcePool(cluster="c1", rtype=ResourceType.RAM, capacity=4_000.0, unit_cost=2.0, utilization=0.45),
    ]
)
_NAMES = tuple(_POOLS.names)


@st.composite
def mixed_population(draw, max_bidders: int = 10):
    """Buyers, sellers, and traders with integer quantities and limits.

    Limits are drawn from a small integer range on purpose: bundle costs
    along integer price paths land in the same range, so drop-out boundary
    cases (cost exactly equal to the limit) occur naturally and often.
    """
    count = draw(st.integers(min_value=1, max_value=max_bidders))
    bids = []
    for i in range(count):
        kind = draw(st.sampled_from(("buyer", "buyer", "buyer", "seller", "trader")))
        if kind == "buyer":
            alternatives = draw(st.integers(min_value=1, max_value=3))
            bundles = []
            for _ in range(alternatives):
                a, b = draw(
                    st.lists(st.sampled_from(_NAMES), min_size=2, max_size=2, unique=True)
                )
                bundles.append(
                    {
                        a: float(draw(st.integers(min_value=1, max_value=30))),
                        b: float(draw(st.integers(min_value=0, max_value=30))),
                    }
                )
            limit = float(draw(st.integers(min_value=0, max_value=600)))
            bids.append(Bid.buy(f"buyer-{i}", _POOLS, bundles, max_payment=limit))
        elif kind == "seller":
            name = draw(st.sampled_from(_NAMES))
            qty = float(draw(st.integers(min_value=1, max_value=30)))
            revenue = float(draw(st.integers(min_value=0, max_value=200)))
            bids.append(
                Bid.sell(f"seller-{i}", _POOLS, [{name: qty}], min_revenue=revenue)
            )
        else:
            a, b = draw(
                st.lists(st.sampled_from(_NAMES), min_size=2, max_size=2, unique=True)
            )
            qty = float(draw(st.integers(min_value=1, max_value=20)))
            limit = float(draw(st.integers(min_value=0, max_value=200)))
            bids.append(
                Bid(
                    bidder=f"trader-{i}",
                    bundles=BundleSet(_POOLS, [{a: qty, b: -qty}]),
                    limit=limit,
                )
            )
    return bids


@st.composite
def price_path(draw, max_rounds: int = 6):
    """A monotone integer price path: reserve prices plus per-round steps.

    Steps of zero are drawn deliberately — both per pool (only a subset of
    the clock moves each round) and per round (a zero-step round where no
    pool moves at all, as happens when excess demand clears inside the
    tolerance while the stall counter ticks).
    """
    r = len(_POOLS)
    start = np.array(
        [float(draw(st.integers(min_value=1, max_value=4))) for _ in range(r)]
    )
    rounds = draw(st.integers(min_value=1, max_value=max_rounds))
    path = [start]
    for _ in range(rounds):
        step = np.array(
            [float(draw(st.integers(min_value=0, max_value=3))) for _ in range(r)]
        )
        path.append(path[-1] + step)
    return path


@settings(max_examples=40, deadline=None)
@given(bids=mixed_population(), path=price_path())
def test_delta_equals_full_reevaluation_bitwise(bids, path):
    engine = BatchDemandEngine(_POOLS, bids)
    state = engine.incremental()
    for prices in path:
        got = state.respond_delta(prices)
        want = engine.respond_all(prices)
        assert got.quantities.tobytes() == want.quantities.tobytes()
        assert got.total.tobytes() == want.total.tobytes()
        assert got.active.tobytes() == want.active.tobytes()
        assert got.bundle_indices.tobytes() == want.bundle_indices.tobytes()
        # Integer data: even the costs are exact, not just ULP-close.
        assert got.costs.tobytes() == want.costs.tobytes()
        assert got.active_count == want.active_count


@settings(max_examples=40, deadline=None)
@given(bids=mixed_population(), path=price_path())
def test_retirement_is_permanent_and_buyers_only(bids, path):
    engine = BatchDemandEngine(_POOLS, bids)
    buyer_mask = engine._ensure_delta_layout().buyer_mask
    state = engine.incremental()
    previous_retired = np.zeros(len(bids), dtype=bool)
    for prices in path:
        state.advance(prices)
        retired = state._retired.copy()
        # Retired rows never re-enter: the mask only ever grows.
        assert np.all(retired >= previous_retired)
        # Only pure buyers retire, and every retired bidder is inactive.
        assert not np.any(retired & ~buyer_mask)
        assert not np.any(retired & state.active)
        # A retired buyer's rows are out of the active set for good.
        assert state.retired_count == int(np.count_nonzero(retired))
        previous_retired = retired
    # Every dropped-out pure buyer is retired (the set is maximal, not
    # merely sound) — this is what makes late rounds cheap.
    assert np.array_equal(state._retired, buyer_mask & ~state.active)


@settings(max_examples=40, deadline=None)
@given(bids=mixed_population(), path=price_path())
def test_running_total_equals_reduce_after_every_round(bids, path):
    engine = BatchDemandEngine(_POOLS, bids)
    state = engine.incremental()
    for prices in path:
        state.advance(prices)
        assert state.total.tobytes() == sum_demand_rows(state.quantities).tobytes()


@settings(max_examples=20, deadline=None)
@given(bids=mixed_population(), path=price_path())
def test_moved_mask_hint_is_validated_and_harmless(bids, path):
    engine = BatchDemandEngine(_POOLS, bids)
    hinted = engine.incremental()
    plain = engine.incremental()
    everything = np.ones(len(_POOLS), dtype=bool)
    for prices in path:
        # A conservative all-true hint must change nothing.
        hinted.advance(prices, moved_mask=everything)
        plain.advance(prices)
        assert hinted.quantities.tobytes() == plain.quantities.tobytes()
        assert hinted.total.tobytes() == plain.total.tobytes()
    assert hinted.rows_evaluated == plain.rows_evaluated


def test_single_pool_index_total_matches_batch():
    # The one layout where numpy's axis-0 reduction is *not* a sequential
    # accumulation: a single-pool index.  The kernel must fall back to the
    # identical full re-reduction there.
    index = PoolIndex(
        [ResourcePool(cluster="solo", rtype=ResourceType.CPU, capacity=500.0, unit_cost=5.0, utilization=0.5)]
    )
    bids = [
        Bid.buy(f"t{i}", index, [{"solo/cpu": float(1 + i % 7)}], max_payment=float(40 + i))
        for i in range(50)
    ]
    engine = BatchDemandEngine(index, bids)
    state = engine.incremental()
    prices = np.ones(1)
    for _ in range(6):
        state.advance(prices)
        want = engine.respond_all(prices)
        assert state.total.tobytes() == want.total.tobytes()
        assert state.quantities.tobytes() == want.quantities.tobytes()
        prices = prices + 1.0


def test_dropout_boundary_cost_exactly_at_limit():
    # cost == limit is "still in" under the DROPOUT_SLACK rule; one unit
    # more and the buyer is out — and, being a pure buyer, retired.
    bids = [Bid.buy("edge", _POOLS, [{"c0/cpu": 10.0}], max_payment=30.0)]
    engine = BatchDemandEngine(_POOLS, bids)
    state = engine.incremental()
    p = np.ones(len(_POOLS))
    state.advance(p)  # cost 10 < 30
    p2 = p.copy()
    p2[0] = 3.0
    state.advance(p2)  # cost 30 == limit: boundary, still active
    assert bool(state.active[0])
    assert state.retired_count == 0
    p3 = p2.copy()
    p3[0] = 4.0
    state.advance(p3)  # cost 40 > 30: out, and permanently retired
    assert not bool(state.active[0])
    assert state.retired_count == 1
    # Further price motion on the retired bidder's pool evaluates no rows.
    p4 = p3.copy()
    p4[0] = 9.0
    state.advance(p4)
    assert state.rows_evaluated[-1] == 0


def test_price_decrease_is_rejected():
    bids = [Bid.buy("t", _POOLS, [{"c0/cpu": 5.0}], max_payment=100.0)]
    state = BatchDemandEngine(_POOLS, bids).incremental()
    p = np.full(len(_POOLS), 2.0)
    state.advance(p)
    lower = p.copy()
    lower[1] = 1.0
    with pytest.raises(ValueError, match="non-decreasing"):
        state.advance(lower)


def test_incomplete_moved_mask_is_rejected():
    bids = [Bid.buy("t", _POOLS, [{"c0/cpu": 5.0}], max_payment=100.0)]
    state = BatchDemandEngine(_POOLS, bids).incremental()
    p = np.ones(len(_POOLS))
    state.advance(p)
    p2 = p.copy()
    p2[0] = 2.0
    with pytest.raises(ValueError, match="moved_mask"):
        state.advance(p2, moved_mask=np.zeros(len(_POOLS), dtype=bool))
