"""Property tests: every mechanism honours the same run-result contract.

The mechanism registry's promise (see :mod:`repro.mechanisms.base`) is that
any registered mechanism, market or baseline, produces a
:class:`~repro.simulation.runner.ScenarioRunResult` with:

* every per-epoch series exactly ``auctions`` entries long,
* every registered metric extractable and finite,
* full determinism under a fixed seed,
* byte-identical canonical sweep reports at any worker count.

These invariants are what lets the runner, store, and statistics layers treat
the mechanism as an opaque dimension.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents.population import PopulationSpec
from repro.cluster.fleet_gen import FleetSpec
from repro.mechanisms import mechanism_names
from repro.results.metrics import METRICS, run_metrics
from repro.simulation.catalog import ScenarioSpec
from repro.simulation.runner import ParallelRunner, run_scenario
from repro.simulation.scenario import ScenarioConfig

import math

import pytest


def tiny_spec(mechanism: str, seed: int, auctions: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="prop-tiny",
        description="property-test economy",
        config=ScenarioConfig(
            fleet=FleetSpec(cluster_count=2, sites=1, machines_range=(5, 10)),
            population=PopulationSpec(team_count=5, budget_per_team=100_000.0),
            seed=seed,
        ),
        auctions=auctions,
        mechanism=mechanism,
    )


#: Every series of a run result that must carry one entry per epoch.
_SERIES_FIELDS = (
    "median_premium",
    "mean_premium",
    "settled_fraction",
    "clearing_rounds",
    "mean_clearing_price",
    "revenue",
    "mean_utilization",
    "utilization_spread",
    "shortage_cost",
    "surplus_cost",
    "satisfied_fraction",
)


@settings(max_examples=4, deadline=None)
@given(
    mechanism=st.sampled_from(mechanism_names()),
    seed=st.integers(min_value=0, max_value=2**16),
    auctions=st.integers(min_value=1, max_value=3),
)
def test_every_mechanism_satisfies_the_run_contract(mechanism, seed, auctions):
    spec = tiny_spec(mechanism, seed, auctions)
    result = run_scenario(spec)

    # provenance
    assert result.mechanism == mechanism
    assert result.seed == seed
    assert result.auctions == auctions

    # one entry per epoch, for every series
    for name in _SERIES_FIELDS:
        assert len(getattr(result, name)) == auctions, name

    # every registered metric extracts to a finite float
    metrics = run_metrics(result)
    assert sorted(metrics) == sorted(METRICS)
    assert all(math.isfinite(v) for v in metrics.values())

    # the canonical payload is JSON-round-trippable (compared as canonical
    # strings: a trade-less market auction's migration stats are NaN, and
    # NaN != NaN under dict equality)
    payload = json.dumps(result.to_dict(), sort_keys=True)
    assert json.dumps(json.loads(payload), sort_keys=True) == payload

    # deterministic under the fixed seed, compared as canonical bytes (wall
    # time never enters to_dict; NaN migration stats serialise identically
    # but defeat dataclass equality)
    assert json.dumps(run_scenario(spec).to_dict(), sort_keys=True) == payload


@settings(max_examples=2, deadline=None)
@given(
    mechanism=st.sampled_from(mechanism_names()),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_canonical_report_is_identical_at_any_worker_count(mechanism, seed):
    specs = [tiny_spec(mechanism, seed + i, auctions=1) for i in range(2)]
    serial = ParallelRunner(workers=1).run_specs(specs)
    pooled = ParallelRunner(workers=2).run_specs(specs)
    assert serial.to_json() == pooled.to_json()


@pytest.mark.parametrize("workers", [1, 2, 3])
def test_mixed_mechanism_sweep_is_worker_count_invariant(workers):
    """The acceptance property: a sweep crossing mechanisms serialises to the
    same bytes whatever the pool size."""
    specs = [tiny_spec(m, seed=9, auctions=1) for m in mechanism_names()]
    reference = ParallelRunner(workers=1).run_specs(specs).to_json()
    assert ParallelRunner(workers=workers).run_specs(specs).to_json() == reference
