"""Property-based tests (hypothesis) for the tournament evolution machinery.

The tournament's reproducibility story rests on three invariants this module
pins down over randomly generated genomes rather than hand-picked examples:

* mutation never escapes the trait bounds, whatever the base traits, seed, or
  mutation scale;
* one clone/mutate/select step is a pure function of ``(seed, population,
  scores)`` — replaying it from the same seed reproduces the same children,
  with sizes and ecology preserved;
* the generation reports a tournament emits are byte-identical across
  execution backends and worker counts (checked end-to-end on a small
  tournament, serial vs process pools of different sizes).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents.tournament import (
    TournamentConfig,
    TournamentEngine,
    apportion_kinds,
    initial_roster,
    next_generation,
)
from repro.agents.traits import (
    TRAIT_BOUNDS,
    TRAIT_NAMES,
    Traits,
    mutate_traits,
    select_elites,
)
from repro.simulation.runner import ParallelRunner

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

trait_vectors = st.builds(
    Traits,
    aggressiveness=unit,
    patience=unit,
    budget_discipline=unit,
    learning_rate=unit,
)


@given(traits=trait_vectors, seed=st.integers(0, 2**32 - 1), scale=st.floats(0.0, 5.0))
def test_mutation_never_escapes_bounds(traits, seed, scale):
    child = mutate_traits(traits, np.random.default_rng(seed), scale=scale)
    for name in TRAIT_NAMES:
        lo, hi = TRAIT_BOUNDS[name]
        assert lo <= getattr(child, name) <= hi


@given(traits=trait_vectors, seed=st.integers(0, 2**32 - 1))
def test_mutation_reproducible_from_seed(traits, seed):
    a = mutate_traits(traits, np.random.default_rng(seed))
    b = mutate_traits(traits, np.random.default_rng(seed))
    assert a == b


@given(
    weights=st.dictionaries(
        st.sampled_from(["lowball", "seller", "market_tracker", "premium_payer"]),
        st.floats(min_value=0.1, max_value=10.0),
        min_size=1,
        max_size=4,
    ),
    size=st.integers(min_value=1, max_value=60),
)
def test_apportionment_sums_and_is_deterministic(weights, size):
    counts = apportion_kinds(weights, size)
    assert sum(counts.values()) == size
    assert all(c > 0 for c in counts.values())
    assert counts == apportion_kinds(dict(reversed(list(weights.items()))), size)


@given(
    seed=st.integers(0, 2**32 - 1),
    gen_seed=st.integers(0, 2**32 - 1),
    size=st.integers(min_value=2, max_value=24),
    elite_fraction=st.floats(min_value=0.1, max_value=1.0),
)
@settings(max_examples=40)
def test_generation_step_reproducible_from_seed(seed, gen_seed, size, elite_fraction):
    """Clone/mutate/select replays exactly from (seed, base population)."""
    mix = {"lowball": 1.0, "seller": 1.0}
    pop = initial_roster(mix, size, np.random.default_rng(seed))
    assert pop == initial_roster(mix, size, np.random.default_rng(seed))
    scores = {g.name: float((i * 7) % 5) for i, g in enumerate(pop)}
    kwargs = dict(generation=1, elite_fraction=elite_fraction)
    a = next_generation(pop, scores, np.random.default_rng(gen_seed), **kwargs)
    b = next_generation(pop, scores, np.random.default_rng(gen_seed), **kwargs)
    assert a == b
    assert len(a) == len(pop)
    assert {g.kind for g in a} == {g.kind for g in pop}
    for child in a:
        for name in TRAIT_NAMES:
            lo, hi = TRAIT_BOUNDS[name]
            assert lo <= getattr(child.traits, name) <= hi


@given(
    scores=st.lists(st.floats(-10.0, 10.0, allow_nan=False), min_size=1, max_size=12),
    fraction=st.floats(min_value=0.05, max_value=1.0),
)
def test_selection_is_deterministic_and_bounded(scores, fraction):
    pop = [Traits() for _ in scores]
    from repro.agents.traits import AgentGenome

    genomes = [
        AgentGenome(name=f"g-{i:02d}", kind="lowball", traits=t)
        for i, t in enumerate(pop)
    ]
    table = {g.name: s for g, s in zip(genomes, scores)}
    elites = select_elites(genomes, table, fraction=fraction)
    assert 1 <= len(elites) <= len(genomes)
    assert elites == select_elites(list(reversed(genomes)), table, fraction=fraction)
    floor = min(table[g.name] for g in elites)
    outside = [table[g.name] for g in genomes if g not in elites]
    assert all(s <= floor for s in outside)


def test_generation_reports_byte_identical_across_workers_and_backends():
    """End-to-end: the same tournament serialises to the same bytes whether
    its generations ran serially or on process pools of different sizes."""
    cfg = TournamentConfig(
        name="prop-tournament",
        description="byte-identity probe",
        base_scenario="smoke",
        generations=2,
        replicates=2,
    )
    reports = [
        TournamentEngine(cfg, runner=runner).run().to_json()
        for runner in (
            ParallelRunner(workers=1),
            ParallelRunner(workers=2, backend="process"),
            ParallelRunner(workers=4, backend="process"),
        )
    ]
    assert reports[0] == reports[1] == reports[2]
