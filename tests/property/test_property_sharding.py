"""Property-based tests (hypothesis) for the pool-sharded auction engine.

The sharded engine's correctness argument has three legs, each pinned here
over randomly generated bid populations:

* the shard planner produces a true partition — every pool and every bid
  lands in exactly one shard, and a bid's shard contains every pool the bid
  references (so no price a shard discovers can depend on another shard);
* the merged round traces are invariant to how the work is parallelised —
  any ``shard_workers`` count produces the same bytes as the batch engine;
* degenerate inputs (all bids coupled through one pool, a single-pool
  index) collapse to fewer than two effective shards and fall back to the
  plain batch loop.

Quantities and limits are drawn as integers scaled to floats: the
equivalence guarantee is qualified on knife-edge cost ties (see
``repro.core.batch``), and hypothesis's boundary-seeking would otherwise
manufacture exactly those degenerate instances.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.pools import PoolIndex, ResourcePool
from repro.cluster.resources import ResourceType
from repro.core.batch import BatchDemandEngine
from repro.core.bids import Bid
from repro.core.clock_auction import AscendingClockAuction, AuctionConfig

# A fixed three-cluster index so hypothesis explores bid space, not fleet
# space; three clusters x two dimensions leaves room for up to three shards.
_POOLS = PoolIndex(
    [
        ResourcePool(cluster="c0", rtype=ResourceType.CPU, capacity=1_000.0, unit_cost=10.0, utilization=0.9),
        ResourcePool(cluster="c0", rtype=ResourceType.RAM, capacity=4_000.0, unit_cost=2.0, utilization=0.85),
        ResourcePool(cluster="c1", rtype=ResourceType.CPU, capacity=1_000.0, unit_cost=10.0, utilization=0.5),
        ResourcePool(cluster="c1", rtype=ResourceType.RAM, capacity=4_000.0, unit_cost=2.0, utilization=0.45),
        ResourcePool(cluster="c2", rtype=ResourceType.CPU, capacity=1_000.0, unit_cost=10.0, utilization=0.3),
        ResourcePool(cluster="c2", rtype=ResourceType.RAM, capacity=4_000.0, unit_cost=2.0, utilization=0.25),
    ]
)
_CLUSTERS = ("c0", "c1", "c2")


@st.composite
def clustered_bids(draw, max_bidders: int = 12):
    """Bids that each stay inside one cluster (shardable by construction)."""
    count = draw(st.integers(min_value=1, max_value=max_bidders))
    bids = []
    for i in range(count):
        cluster = draw(st.sampled_from(_CLUSTERS))
        alternatives = draw(st.integers(min_value=1, max_value=2))
        bundles = []
        for _ in range(alternatives):
            cpu = float(draw(st.integers(min_value=1, max_value=300)))
            ram = float(draw(st.integers(min_value=0, max_value=1_200)))
            bundles.append({f"{cluster}/cpu": cpu, f"{cluster}/ram": ram})
        limit = float(draw(st.integers(min_value=0, max_value=20_000)))
        bids.append(Bid.buy(f"bidder-{i}", _POOLS, bundles, max_payment=limit))
    return bids


@st.composite
def coupled_bids(draw, max_bidders: int = 8):
    """Bids that all reference ``c0/cpu``, coupling every touched pool."""
    count = draw(st.integers(min_value=1, max_value=max_bidders))
    bids = []
    for i in range(count):
        cluster = draw(st.sampled_from(_CLUSTERS))
        bundle = {
            "c0/cpu": float(draw(st.integers(min_value=1, max_value=100))),
            f"{cluster}/ram": float(draw(st.integers(min_value=1, max_value=500))),
        }
        limit = float(draw(st.integers(min_value=0, max_value=20_000)))
        bids.append(Bid.buy(f"bidder-{i}", _POOLS, bundles=[bundle], max_payment=limit))
    return bids


def _run(bids, engine, *, shard_workers=None):
    auction = AscendingClockAuction(
        _POOLS,
        bids,
        reserve_prices=np.ones(len(_POOLS)),
        supply=_POOLS.available() * 0.9,
        config=AuctionConfig(
            engine=engine, record_bidder_demands=True, shard_workers=shard_workers
        ),
    )
    return auction, auction.run()


def _outcome_bytes(outcome):
    """A byte-level fingerprint of an auction outcome including its trace."""
    parts = [
        outcome.final_prices.tobytes(),
        outcome.excess_demand.tobytes(),
        repr(sorted(outcome.final_demands)).encode(),
    ]
    for bidder in sorted(outcome.final_demands):
        parts.append(outcome.final_demands[bidder].tobytes())
    for round_state in outcome.rounds:
        parts.append(round_state.prices.tobytes())
        parts.append(round_state.excess_demand.tobytes())
        parts.append(str(round_state.active_bidders).encode())
        for bidder in sorted(round_state.bidder_demands):
            parts.append(round_state.bidder_demands[bidder].tobytes())
    return b"|".join(parts)


@settings(max_examples=30, deadline=None)
@given(bids=clustered_bids())
def test_planner_is_a_true_partition(bids):
    plan = BatchDemandEngine(_POOLS, bids).plan_shards()
    all_pools = [p for group in plan.pool_groups for p in group]
    assert sorted(all_pools) == list(range(len(_POOLS)))
    assert len(set(all_pools)) == len(all_pools)
    all_bids = [b for group in plan.bid_groups for b in group]
    assert sorted(all_bids) == list(range(len(bids)))
    assert len(set(all_bids)) == len(all_bids)
    # Every bid's referenced pools are contained in its own shard.
    for pool_group, bid_group in zip(plan.pool_groups, plan.bid_groups):
        pool_set = set(pool_group)
        for b in bid_group:
            referenced = set(np.flatnonzero(np.any(bids[b].bundles.matrix != 0, axis=0)))
            assert referenced <= pool_set, (b, referenced, pool_set)


@settings(max_examples=20, deadline=None)
@given(bids=clustered_bids(), workers=st.sampled_from([None, 1, 2, 3]))
def test_merged_trace_invariant_to_workers_and_identical_to_batch(bids, workers):
    _, batch_outcome = _run(bids, "batch")
    auction, sharded_outcome = _run(bids, "sharded", shard_workers=workers)
    assert sharded_outcome.round_count == batch_outcome.round_count
    assert _outcome_bytes(sharded_outcome) == _outcome_bytes(batch_outcome)
    # The plan covered every bid whether or not the engine fell back.
    assert auction.shard_plan is not None
    assert sum(len(g) for g in auction.shard_plan.bid_groups) == len(bids)


@settings(max_examples=20, deadline=None)
@given(bids=coupled_bids())
def test_all_coupled_bids_fall_back_to_batch(bids):
    auction, sharded_outcome = _run(bids, "sharded")
    assert auction.shard_plan.effective_shards == 1
    assert auction.sharded_fallback is True
    assert auction.shard_stats["fallback"] is True
    _, batch_outcome = _run(bids, "batch")
    assert _outcome_bytes(sharded_outcome) == _outcome_bytes(batch_outcome)


@settings(max_examples=10, deadline=None)
@given(
    quantity=st.integers(min_value=1, max_value=100),
    limit=st.integers(min_value=0, max_value=5_000),
)
def test_single_pool_index_falls_back(quantity, limit):
    index = PoolIndex(
        [ResourcePool(cluster="solo", rtype=ResourceType.CPU, capacity=500.0, unit_cost=5.0, utilization=0.5)]
    )
    bids = [
        Bid.buy(f"t{i}", index, [{"solo/cpu": float(quantity)}], max_payment=float(limit))
        for i in range(3)
    ]
    auction = AscendingClockAuction(
        index,
        bids,
        reserve_prices=np.ones(1),
        supply=index.available(),
        config=AuctionConfig(engine="sharded"),
    )
    outcome = auction.run()
    assert auction.sharded_fallback is True
    assert outcome.converged
