"""Property-based tests for supporting data structures: bundles, bid trees, boxplots, percentiles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.boxplot import boxplot_stats
from repro.bidlang.ast import AndNode, BidNode, PoolLeaf, XorNode
from repro.bidlang.flatten import flatten
from repro.bidlang.parser import parse_sexpr
from repro.cluster.resources import ResourceVector, cpu_ram_disk
from repro.cluster.utilization import percentile_ranks

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
positive_floats = st.floats(min_value=0.01, max_value=1e6, allow_nan=False)


class TestResourceVectorProperties:
    @settings(max_examples=100, deadline=None)
    @given(a=st.tuples(finite_floats, finite_floats, finite_floats), b=st.tuples(finite_floats, finite_floats, finite_floats))
    def test_addition_commutes_and_subtraction_inverts(self, a, b):
        va, vb = cpu_ram_disk(*a), cpu_ram_disk(*b)
        assert va + vb == vb + va
        round_trip = (va + vb) - vb
        assert round_trip.cpu == pytest.approx(va.cpu, abs=1e-6)
        assert round_trip.ram == pytest.approx(va.ram, abs=1e-6)
        assert round_trip.disk == pytest.approx(va.disk, abs=1e-6)

    @settings(max_examples=100, deadline=None)
    @given(a=st.tuples(positive_floats, positive_floats, positive_floats), scale=st.floats(min_value=0.0, max_value=100.0))
    def test_scaling_preserves_nonnegativity_and_fit(self, a, scale):
        vec = cpu_ram_disk(*a)
        scaled = vec * scale
        assert scaled.is_nonnegative()
        if scale <= 1.0:
            assert scaled.fits_within(vec)

    @settings(max_examples=100, deadline=None)
    @given(a=st.tuples(positive_floats, positive_floats, positive_floats))
    def test_fits_within_is_reflexive_and_dominates_is_converse(self, a):
        vec = cpu_ram_disk(*a)
        assert vec.fits_within(vec)
        assert vec.dominates(vec)


class TestPercentileRankProperties:
    @settings(max_examples=100, deadline=None)
    @given(values=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50))
    def test_ranks_are_bounded_and_order_preserving(self, values):
        ranks = percentile_ranks(values)
        assert np.all(ranks >= 0.0) and np.all(ranks <= 100.0)
        order = np.argsort(values, kind="stable")
        sorted_ranks = ranks[order]
        assert np.all(np.diff(sorted_ranks) >= -1e-9)

    @settings(max_examples=100, deadline=None)
    @given(values=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=50, unique=True))
    def test_distinct_values_span_zero_to_hundred(self, values):
        ranks = percentile_ranks(values)
        assert ranks.min() == 0.0
        assert ranks.max() == 100.0


class TestBoxplotProperties:
    @settings(max_examples=100, deadline=None)
    @given(values=st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=1, max_size=200))
    def test_summary_ordering_and_outlier_bounds(self, values):
        stats = boxplot_stats(values)
        assert stats.minimum <= stats.q1 <= stats.median <= stats.q3 <= stats.maximum
        assert stats.whisker_low >= stats.minimum - 1e-9
        assert stats.whisker_high <= stats.maximum + 1e-9
        assert stats.count == len(values)
        for outlier in stats.outliers:
            assert outlier < stats.whisker_low or outlier > stats.whisker_high


@st.composite
def bid_trees(draw, depth: int = 0) -> BidNode:
    """Random bid trees over a tiny pool vocabulary."""
    pools = ["c0/cpu", "c0/ram", "c1/cpu", "c1/ram"]
    if depth >= 3 or draw(st.booleans()):
        return PoolLeaf(
            pool_name=draw(st.sampled_from(pools)),
            quantity=draw(st.floats(min_value=0.5, max_value=100.0)),
        )
    node_type = draw(st.sampled_from(["and", "xor"]))
    children = tuple(draw(bid_trees(depth=depth + 1)) for _ in range(draw(st.integers(2, 3))))
    return AndNode(parts=children) if node_type == "and" else XorNode(alternatives=children)


class TestBidLanguageProperties:
    @settings(max_examples=80, deadline=None)
    @given(tree=bid_trees())
    def test_sexpr_round_trip(self, tree):
        assert parse_sexpr(tree.to_sexpr()) == tree

    @settings(max_examples=80, deadline=None)
    @given(tree=bid_trees())
    def test_flatten_produces_bounded_nonempty_combos(self, tree):
        combos = flatten(tree, max_bundles=10_000)
        assert combos
        # every combination only references known pools with positive quantities
        for combo in combos:
            assert combo
            for name, quantity in combo.items():
                assert name.startswith(("c0/", "c1/"))
                assert quantity > 0

    @settings(max_examples=80, deadline=None)
    @given(tree=bid_trees())
    def test_xor_of_tree_with_itself_adds_no_new_combos(self, tree):
        base = flatten(tree, max_bundles=10_000)
        doubled = flatten(XorNode(alternatives=(tree, tree)), max_bundles=20_000)
        assert len(doubled) == len(base)
