"""Property-based tests (hypothesis) for the core market mechanism.

These pin down the invariants the paper's SYSTEM formulation demands, over
randomly generated bid populations rather than hand-picked examples:

* the clock auction's prices never decrease and never fall below the reserve;
* a converged auction has no positive excess demand;
* settlements always satisfy the six SYSTEM constraints;
* winners never pay more than their limit and always get their cheapest bundle;
* the premium gamma_u is non-negative whenever defined.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.pools import PoolIndex, ResourcePool
from repro.cluster.resources import ResourceType
from repro.core.bids import Bid
from repro.core.clock_auction import AscendingClockAuction, AuctionConfig
from repro.core.increment import default_increment
from repro.core.reserve import PAPER_PHI_1, ReservePricer
from repro.core.settlement import settle, verify_system_constraints

# A deliberately small, fixed pool index so hypothesis explores bid space, not fleet space.
_POOLS = PoolIndex(
    [
        ResourcePool(cluster="c0", rtype=ResourceType.CPU, capacity=1_000.0, unit_cost=10.0, utilization=0.9),
        ResourcePool(cluster="c0", rtype=ResourceType.RAM, capacity=4_000.0, unit_cost=2.0, utilization=0.85),
        ResourcePool(cluster="c1", rtype=ResourceType.CPU, capacity=1_000.0, unit_cost=10.0, utilization=0.3),
        ResourcePool(cluster="c1", rtype=ResourceType.RAM, capacity=4_000.0, unit_cost=2.0, utilization=0.25),
    ]
)


@st.composite
def buy_bids(draw, max_bidders: int = 8):
    """A list of pure-buyer bids with 1-2 alternative bundles each."""
    count = draw(st.integers(min_value=1, max_value=max_bidders))
    bids = []
    for i in range(count):
        alternatives = draw(st.integers(min_value=1, max_value=2))
        bundles = []
        for _ in range(alternatives):
            cluster = draw(st.sampled_from(["c0", "c1"]))
            cpu = draw(st.floats(min_value=1.0, max_value=300.0))
            ram = draw(st.floats(min_value=0.0, max_value=1_200.0))
            bundles.append({f"{cluster}/cpu": cpu, f"{cluster}/ram": ram})
        limit = draw(st.floats(min_value=0.0, max_value=20_000.0))
        bids.append(Bid.buy(f"bidder-{i}", _POOLS, bundles, max_payment=limit))
    return bids


def _run_auction(bids):
    reserve = ReservePricer(weighting=PAPER_PHI_1).reserve_prices(_POOLS)
    supply = _POOLS.available() * 0.9
    auction = AscendingClockAuction(
        _POOLS,
        bids,
        reserve_prices=reserve,
        supply=supply,
        increment=default_increment(_POOLS.capacities()),
        config=AuctionConfig(max_rounds=5_000),
    )
    return auction.run(), reserve, supply


class TestClockAuctionProperties:
    @settings(max_examples=40, deadline=None)
    @given(bids=buy_bids())
    def test_pure_buyer_auctions_always_converge(self, bids):
        outcome, reserve, supply = _run_auction(bids)
        assert outcome.converged

    @settings(max_examples=40, deadline=None)
    @given(bids=buy_bids())
    def test_prices_monotone_and_at_least_reserve(self, bids):
        outcome, reserve, _ = _run_auction(bids)
        trajectory = np.array([r.prices for r in outcome.rounds])
        assert np.all(np.diff(trajectory, axis=0) >= -1e-12)
        assert np.all(outcome.final_prices >= reserve - 1e-12)

    @settings(max_examples=40, deadline=None)
    @given(bids=buy_bids())
    def test_no_positive_excess_demand_at_clearing(self, bids):
        outcome, _, supply = _run_auction(bids)
        tolerance = 1e-6 * np.maximum(_POOLS.capacities(), 1.0) + 1e-6
        assert np.all(outcome.excess_demand <= tolerance)

    @settings(max_examples=40, deadline=None)
    @given(bids=buy_bids())
    def test_settlement_satisfies_system_constraints(self, bids):
        outcome, _, supply = _run_auction(bids)
        settlement = settle(_POOLS, bids, outcome.final_prices, supply=supply)
        report = verify_system_constraints(settlement, bids)
        assert report.satisfied, report.violations

    @settings(max_examples=40, deadline=None)
    @given(bids=buy_bids())
    def test_winners_pay_within_limit_and_get_cheapest_bundle(self, bids):
        outcome, _, supply = _run_auction(bids)
        settlement = settle(_POOLS, bids, outcome.final_prices, supply=supply)
        by_name = {bid.bidder: bid for bid in bids}
        for line in settlement.winners:
            bid = by_name[line.bidder]
            costs = bid.bundles.costs(outcome.final_prices)
            assert line.payment <= bid.limit + 1e-6
            assert line.payment == pytest.approx(float(np.min(costs)), abs=1e-6)
            premium = line.premium
            assert premium is None or premium >= -1e-12


class TestReserveAndIncrementProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        utilization=st.floats(min_value=0.0, max_value=1.0),
        cost=st.floats(min_value=0.01, max_value=100.0),
    )
    def test_reserve_price_is_phi_times_cost(self, utilization, cost):
        pool = ResourcePool(cluster="c", rtype=ResourceType.CPU, capacity=10.0, unit_cost=cost, utilization=utilization)
        index = PoolIndex([pool])
        price = ReservePricer(weighting=PAPER_PHI_1).reserve_prices(index)[0]
        assert price == pytest.approx(PAPER_PHI_1(utilization) * cost)
        assert price >= 0.0

    @settings(max_examples=60, deadline=None)
    @given(
        low=st.floats(min_value=0.0, max_value=1.0),
        high=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_weighting_monotonicity(self, low, high):
        lo, hi = sorted((low, high))
        assert PAPER_PHI_1(lo) <= PAPER_PHI_1(hi) + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(
        excess=st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=3, max_size=3),
        prices=st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=3, max_size=3),
    )
    def test_increment_is_nonnegative_capped_and_supported_on_excess(self, excess, prices):
        policy = default_increment(np.array([100.0, 1_000.0, 10_000.0]), cap_fraction=0.1)
        z = np.array(excess)
        p = np.array(prices)
        step = policy.increment(z, p)
        assert np.all(step >= 0)
        assert np.all(step <= 0.1 * np.maximum(p, 1e-6) + 1e-12)
        assert np.all(step[z <= 0] == 0.0)
