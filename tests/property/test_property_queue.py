"""Property-based tests (hypothesis) for the job-queue lifecycle.

The coordinator replays an arbitrary interleaving of dispatches, worker
deaths, stragglers, and completions against :class:`repro.exec.queue.JobQueue`.
Rather than enumerating those interleavings by hand, hypothesis generates
randomized worker-death schedules and a simulated dispatch loop drives the
queue through them, asserting the invariants the coordinator's correctness
rests on:

* the sweep always terminates: every job ends DONE, or the run aborts with
  :class:`RetryBudgetExhausted` — no livelock, no limbo states;
* a job is dispatched at most ``retry_budget + 1`` times;
* DONE is terminal: once a result landed, no later death can move the job;
* a requeued job re-enters at the *front*, so the longest-job-first priority
  survives arbitrary loss patterns;
* state counts always sum to the job count.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.queue import (
    JobQueue,
    JobState,
    RetryBudgetExhausted,
)


@st.composite
def death_schedules(draw):
    """A sweep shape plus a scripted death/straggle decision stream.

    ``deaths`` decides, per dispatch event, whether the worker running it
    dies before delivering (True) or the job completes (False).
    ``stragglers`` decides whether a death's forfeited result later arrives
    anyway (the premature-loss case).  Streams are drawn long enough for any
    legal run and consumed positionally, which keeps every run deterministic
    and shrinkable.
    """
    jobs = draw(st.integers(min_value=1, max_value=8))
    budget = draw(st.integers(min_value=0, max_value=3))
    events = jobs * (budget + 2) + 8
    deaths = draw(st.lists(st.booleans(), min_size=events, max_size=events))
    stragglers = draw(st.lists(st.booleans(), min_size=events, max_size=events))
    order = draw(st.permutations(range(jobs)))
    return jobs, budget, list(order), deaths, stragglers


def run_sweep(jobs, budget, order, deaths, stragglers):
    """Drive a JobQueue through a scripted death schedule like the
    coordinator would; returns (queue, dispatch_log, aborted)."""
    queue = JobQueue(order, retry_budget=budget)
    log = []
    step = 0
    while not queue.finished:
        index = queue.next_job()
        assert index is not None, "unfinished queue with nothing to run"
        queue.mark_running(index, worker=f"w{step}")
        log.append(index)
        died = deaths[step]
        straggles = stragglers[step]
        step += 1
        if not died:
            queue.mark_done(index)
            continue
        try:
            queue.requeue(index, front=True)
        except RetryBudgetExhausted:
            return queue, log, True
        if straggles:
            # The dead worker's result limps in after the requeue.
            queue.mark_done(index)
    return queue, log, False


@given(death_schedules())
@settings(max_examples=200)
def test_sweep_always_terminates_cleanly_or_aborts(schedule):
    jobs, budget, order, deaths, stragglers = schedule
    queue, log, aborted = run_sweep(jobs, budget, order, deaths, stragglers)
    states = {job.index: job.state for job in queue}
    if aborted:
        # Exactly one job exhausted its budget; it is parked in ERROR.
        assert sum(1 for s in states.values() if s is JobState.ERROR) == 1
    else:
        assert all(s is JobState.DONE for s in states.values())
        assert queue.done_count == jobs


@given(death_schedules())
@settings(max_examples=200)
def test_no_job_dispatched_beyond_its_budget(schedule):
    jobs, budget, order, deaths, stragglers = schedule
    queue, log, _ = run_sweep(jobs, budget, order, deaths, stragglers)
    for job in queue:
        dispatches = sum(1 for index in log if index == job.index)
        assert dispatches <= budget + 1
        assert dispatches == job.attempts


@given(death_schedules())
@settings(max_examples=200)
def test_done_jobs_never_move_and_counts_stay_consistent(schedule):
    jobs, budget, order, deaths, stragglers = schedule
    queue = JobQueue(order, retry_budget=budget)
    done_at = {}
    step = 0
    while not queue.finished:
        index = queue.next_job()
        queue.mark_running(index, worker="w")
        died = deaths[step]
        step += 1
        if died:
            try:
                queue.requeue(index, front=True)
            except RetryBudgetExhausted:
                break
        else:
            queue.mark_done(index)
            done_at[index] = step
        counts = queue.counts()
        assert sum(counts.values()) == jobs
        for done_index in done_at:
            assert queue.state(done_index) is JobState.DONE


@given(death_schedules())
@settings(max_examples=200)
def test_requeue_preserves_longest_job_first_priority(schedule):
    """After any death, the forfeited job runs before anything that was
    behind it in the priority order (front requeue)."""
    jobs, budget, order, deaths, stragglers = schedule
    queue = JobQueue(order, retry_budget=budget)
    priority = {index: rank for rank, index in enumerate(order)}
    step = 0
    while not queue.finished:
        index = queue.next_job()
        queue.mark_running(index, worker="w")
        died = deaths[step]
        step += 1
        if not died:
            queue.mark_done(index)
            continue
        try:
            queue.requeue(index, front=True)
        except RetryBudgetExhausted:
            break
        assert queue.next_job() == index, (
            f"forfeited job {index} (priority {priority[index]}) "
            f"must restart before anything lighter"
        )