"""Unit tests for the analysis layer: boxplots, premiums, price ratios, utilization stats, reports."""

import numpy as np
import pytest

from repro.analysis.boxplot import boxplot_stats
from repro.analysis.premium import premium_stats, premium_table, premium_trend
from repro.analysis.price_ratio import (
    price_ratio_table,
    ratio_utilization_correlation,
    sort_rows_for_figure6,
)
from repro.analysis.reports import (
    render_boxplots,
    render_figure6_rows,
    render_premium_table,
    render_table,
)
from repro.analysis.settlement_stats import (
    demand_concentration,
    operator_revenue,
    settlement_by_strategy,
    utilization_after_settlement,
    utilization_balance_improvement,
)
from repro.analysis.utilization_stats import (
    figure7_boxplots,
    migration_summary,
    settled_trades,
    utilization_percentile_groups,
)
from repro.cluster.resources import ResourceType
from repro.core.bids import Bid
from repro.core.settlement import settle


class TestBoxplotStats:
    def test_five_number_summary(self):
        stats = boxplot_stats(range(1, 101))
        assert stats.count == 100
        assert stats.minimum == 1 and stats.maximum == 100
        assert stats.median == pytest.approx(50.5)
        assert stats.q1 < stats.median < stats.q3
        assert stats.iqr == pytest.approx(stats.q3 - stats.q1)
        assert stats.outliers == ()

    def test_outliers_detected(self):
        values = [10.0] * 20 + [1000.0]
        stats = boxplot_stats(values)
        assert stats.outliers == (1000.0,)
        assert stats.whisker_high == 10.0
        assert stats.contains(10.0) and stats.contains(1000.0)

    def test_empty_and_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            boxplot_stats([])
        with pytest.raises(ValueError):
            boxplot_stats([1.0, float("nan")])

    def test_single_value(self):
        stats = boxplot_stats([5.0])
        assert stats.minimum == stats.median == stats.maximum == 5.0


class TestPremiumAnalysis:
    def make_settlement(self, pool_index, limits):
        bids = [
            Bid.buy(f"t{i}", pool_index, [{"alpha/cpu": 10}], max_payment=limit)
            for i, limit in enumerate(limits)
        ]
        return settle(pool_index, bids, np.ones(len(pool_index)))

    def test_premium_stats_values(self, pool_index):
        # price 1/unit -> payment 10; limits 12 and 20 -> premiums 0.2 and 1.0; limit 5 loses
        settlement = self.make_settlement(pool_index, [12.0, 20.0, 5.0])
        stats = premium_stats(settlement, auction=2)
        assert stats.auction == 2
        assert stats.winner_count == 2 and stats.bidder_count == 3
        assert stats.median_premium == pytest.approx(0.6)
        assert stats.mean_premium == pytest.approx(0.6)
        assert stats.settled_fraction == pytest.approx(2 / 3)
        assert stats.as_row()["pct_settled"] == pytest.approx(66.6666, rel=1e-3)

    def test_premium_stats_empty_settlement(self, pool_index):
        stats = premium_stats(settle(pool_index, [], np.ones(len(pool_index))))
        assert stats.median_premium == 0.0 and stats.settled_fraction == 0.0

    def test_premium_table_and_trend(self, pool_index):
        settlements = [
            self.make_settlement(pool_index, [30.0, 40.0]),
            self.make_settlement(pool_index, [12.0, 14.0]),
            self.make_settlement(pool_index, [10.5, 11.0]),
        ]
        rows = premium_table(settlements)
        assert [row.auction for row in rows] == [1, 2, 3]
        trend = premium_trend(rows)
        assert trend["median_last"] < trend["median_first"]
        assert trend["median_ratio_last_to_first"] < 1.0
        assert trend["median_monotone_decreasing"] == 1.0

    def test_premium_trend_requires_rows(self):
        with pytest.raises(ValueError):
            premium_trend([])


class TestPriceRatios:
    def test_table_and_sorting(self, pool_index):
        market = {name: 2.0 for name in pool_index.names}
        fixed = {name: 1.0 for name in pool_index.names}
        market["beta/cpu"] = 0.5
        rows = price_ratio_table(pool_index, market, fixed)
        assert len(rows) == 2
        by_cluster = {row.cluster: row for row in rows}
        assert by_cluster["alpha"].cpu_ratio == 2.0
        assert by_cluster["beta"].cpu_ratio == 0.5
        assert by_cluster["alpha"].ratio(ResourceType.RAM) == 2.0
        assert by_cluster["alpha"].max_ratio() == 2.0
        ordered = sort_rows_for_figure6(rows)
        assert ordered[0].cluster == "beta"

    def test_correlation_positive_when_congested_pools_cost_more(self, pool_index):
        market = {name: pool_index.pool(name).unit_cost * (1 + pool_index.pool(name).utilization) for name in pool_index.names}
        fixed = {name: pool_index.pool(name).unit_cost for name in pool_index.names}
        rows = price_ratio_table(pool_index, market, fixed)
        assert ratio_utilization_correlation(rows) > 0.9

    def test_correlation_degenerate_cases(self, pool_index):
        market = {name: 1.0 for name in pool_index.names}
        rows = price_ratio_table(pool_index, market, market)
        assert ratio_utilization_correlation(rows) == 0.0
        assert ratio_utilization_correlation(rows[:1]) == 0.0


class TestUtilizationStats:
    def make_settlement(self, pool_index):
        bids = [
            Bid.buy("buyer-idle", pool_index, [{"beta/cpu": 10, "beta/ram": 40}], max_payment=1e6),
            Bid.buy("buyer-congested", pool_index, [{"alpha/cpu": 5}], max_payment=1e6),
            Bid.sell("seller-congested", pool_index, [{"alpha/cpu": 20}], min_revenue=0.0),
        ]
        return settle(pool_index, bids, np.ones(len(pool_index)))

    def test_settled_trades_classification(self, pool_index):
        trades = settled_trades(self.make_settlement(pool_index))
        sides = {(t.bidder, t.pool): t.side for t in trades}
        assert sides[("buyer-idle", "beta/cpu")] == "bid"
        assert sides[("seller-congested", "alpha/cpu")] == "offer"
        # percentile of the congested alpha pools exceeds the idle beta pools
        alpha_trade = next(t for t in trades if t.pool == "alpha/cpu" and t.side == "offer")
        beta_trade = next(t for t in trades if t.pool == "beta/cpu")
        assert alpha_trade.utilization_percentile > beta_trade.utilization_percentile

    def test_groups_and_boxplots(self, pool_index):
        settlement = self.make_settlement(pool_index)
        groups = utilization_percentile_groups(settled_trades(settlement))
        assert (ResourceType.CPU, "bid") in groups
        boxes = figure7_boxplots(settlement)
        assert "CPU Bids" in boxes and "CPU Offers" in boxes
        assert "RAM Offers" not in boxes  # nobody sold RAM

    def test_migration_summary(self, pool_index):
        summary = migration_summary(settled_trades(self.make_settlement(pool_index)))
        assert summary["bid_count"] == 3.0  # beta/cpu, beta/ram, alpha/cpu
        assert summary["offer_count"] == 1.0
        assert 0.0 <= summary["bid_quantity_share_in_underutilized"] <= 1.0

    def test_migration_summary_empty(self):
        summary = migration_summary([])
        assert np.isnan(summary["median_bid_percentile"])
        assert summary["bid_count"] == 0.0

    def test_custom_percentiles_override(self, pool_index):
        settlement = self.make_settlement(pool_index)
        forced = {name: 42.0 for name in pool_index.names}
        trades = settled_trades(settlement, percentiles=forced)
        assert all(t.utilization_percentile == 42.0 for t in trades)


class TestSettlementStats:
    def make_settlement(self, pool_index):
        bids = [
            Bid.buy("buyer", pool_index, [{"beta/cpu": 100}], max_payment=1e6, strategy="MarketTrackerStrategy"),
            Bid.sell("seller", pool_index, [{"alpha/cpu": 100}], min_revenue=0.0, strategy="SellerStrategy"),
            Bid.buy("loser", pool_index, [{"alpha/cpu": 100}], max_payment=0.0, strategy="LowballStrategy"),
        ]
        return settle(pool_index, bids, np.ones(len(pool_index))), bids

    def test_utilization_after_settlement_moves_in_right_direction(self, pool_index):
        settlement, _ = self.make_settlement(pool_index)
        after = utilization_after_settlement(settlement)
        before = pool_index.utilizations()
        assert after[pool_index.index_of("beta/cpu")] > before[pool_index.index_of("beta/cpu")]
        assert after[pool_index.index_of("alpha/cpu")] < before[pool_index.index_of("alpha/cpu")]

    def test_balance_improvement_positive_for_rebalancing_trade(self, pool_index):
        settlement, _ = self.make_settlement(pool_index)
        balance = utilization_balance_improvement(settlement)
        assert balance["spread_after"] < balance["spread_before"]
        assert balance["improvement"] > 0

    def test_settlement_by_strategy(self, pool_index):
        settlement, bids = self.make_settlement(pool_index)
        groups = settlement_by_strategy(settlement, bids)
        assert groups["MarketTrackerStrategy"]["win_rate"] == 1.0
        assert groups["LowballStrategy"]["win_rate"] == 0.0
        assert groups["SellerStrategy"]["total_received"] > 0

    def test_demand_concentration_and_revenue(self, pool_index):
        settlement, _ = self.make_settlement(pool_index)
        concentration = demand_concentration(settlement)
        assert concentration["beta"] == pytest.approx(1.0)
        # buyer pays 100, seller receives 100 -> net operator revenue 0
        assert operator_revenue(settlement) == pytest.approx(0.0)


class TestReports:
    def test_render_table_alignment_and_title(self):
        text = render_table(["a", "bb"], [["x", 1.5], ["yy", 2.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_premium_and_figure6_and_boxplots(self, pool_index):
        bids = [Bid.buy("t", pool_index, [{"alpha/cpu": 10}], max_payment=20.0)]
        settlement = settle(pool_index, bids, np.ones(len(pool_index)))
        premium_text = render_premium_table([premium_stats(settlement, auction=1)])
        assert "Auction" in premium_text and "1" in premium_text

        rows = price_ratio_table(
            pool_index, {n: 1.0 for n in pool_index.names}, {n: 1.0 for n in pool_index.names}
        )
        figure6_text = render_figure6_rows(rows)
        assert "alpha" in figure6_text

        boxes = figure7_boxplots(settlement)
        box_text = render_boxplots(boxes)
        assert "CPU Bids" in box_text
