"""Replicate statistics: CI math against hand-computed values, degenerate cases,
and the regression-flagging comparison logic."""

import math

import pytest

from repro.results.metrics import METRIC_DIRECTIONS, METRICS, MetricDef
from repro.results.stats import (
    ComparisonReport,
    aggregate_metrics,
    compare_metrics,
    replicate_stats,
    t_critical_95,
)


class TestTCritical:
    def test_small_df_uses_the_t_table(self):
        assert t_critical_95(1) == 12.706
        assert t_critical_95(4) == 2.776
        assert t_critical_95(30) == 2.042

    def test_large_df_uses_normal_approximation(self):
        assert t_critical_95(31) == 1.960
        assert t_critical_95(1000) == 1.960

    def test_invalid_df_rejected(self):
        with pytest.raises(ValueError):
            t_critical_95(0)


class TestReplicateStats:
    def test_hand_computed_five_replicates(self):
        # values 1..5: mean 3, sample stddev sqrt(2.5), sem sqrt(2.5)/sqrt(5),
        # t(4) = 2.776 -> half-width 2.776 * sqrt(0.5) = 1.962927...
        stats = replicate_stats("demo", [1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.count == 5
        assert stats.mean == 3.0
        assert stats.stddev == pytest.approx(math.sqrt(2.5))
        expected_half = 2.776 * math.sqrt(2.5) / math.sqrt(5)
        assert stats.ci_half_width == pytest.approx(expected_half)
        low, high = stats.ci95
        assert low == pytest.approx(3.0 - expected_half)
        assert high == pytest.approx(3.0 + expected_half)

    def test_hand_computed_two_replicates(self):
        # values 10, 14: mean 12, stddev sqrt(8), t(1) = 12.706
        stats = replicate_stats("demo", [10.0, 14.0])
        assert stats.mean == 12.0
        assert stats.stddev == pytest.approx(math.sqrt(8.0))
        assert stats.ci_half_width == pytest.approx(12.706 * math.sqrt(8.0) / math.sqrt(2))

    def test_single_replicate_has_no_ci(self):
        stats = replicate_stats("demo", [7.5])
        assert stats.count == 1
        assert stats.mean == 7.5
        assert stats.stddev is None
        assert stats.ci_half_width is None
        assert stats.ci95 is None

    def test_zero_variance_gives_zero_width_ci(self):
        stats = replicate_stats("demo", [2.0, 2.0, 2.0])
        assert stats.stddev == 0.0
        assert stats.ci_half_width == 0.0
        assert stats.ci95 == (2.0, 2.0)

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            replicate_stats("demo", [])

    def test_to_dict_round_trips_none_ci(self):
        assert replicate_stats("demo", [1.0]).to_dict()["ci95"] is None
        assert replicate_stats("demo", [1.0, 3.0]).to_dict()["ci95"] is not None


class TestAggregateMetrics:
    def test_aggregates_every_nonempty_metric(self):
        stats = aggregate_metrics({"a": [1.0, 3.0], "b": [5.0], "empty": []})
        assert sorted(stats) == ["a", "b"]
        assert stats["a"].mean == 2.0
        assert stats["b"].count == 1


class TestCompareMetrics:
    def test_within_tolerance_is_ok(self):
        report = compare_metrics(
            {"total_revenue": [100.0, 100.0]},
            {"total_revenue": [102.0, 102.0]},
            tolerance=0.05,
        )
        assert isinstance(report, ComparisonReport)
        assert report.ok
        assert not report.comparisons[0].significant

    def test_higher_is_better_drop_is_a_regression(self):
        report = compare_metrics(
            {"total_revenue": [100.0, 100.0]},
            {"total_revenue": [90.0, 90.0]},
            tolerance=0.05,
        )
        assert not report.ok
        assert [c.metric for c in report.regressions] == ["total_revenue"]

    def test_higher_is_better_rise_is_an_improvement_not_a_regression(self):
        report = compare_metrics(
            {"total_revenue": [100.0, 100.0]},
            {"total_revenue": [120.0, 120.0]},
        )
        assert report.ok
        assert report.comparisons[0].significant

    def test_lower_is_better_rise_is_a_regression(self):
        report = compare_metrics(
            {"mean_clearing_rounds": [10.0]},
            {"mean_clearing_rounds": [12.0]},
        )
        assert [c.metric for c in report.regressions] == ["mean_clearing_rounds"]

    def test_neutral_metric_flags_any_significant_change(self):
        up = compare_metrics({"trade_count": [100.0]}, {"trade_count": [120.0]})
        down = compare_metrics({"trade_count": [100.0]}, {"trade_count": [80.0]})
        assert not up.ok and not down.ok

    def test_unknown_metric_defaults_to_neutral(self):
        report = compare_metrics({"custom": [1.0]}, {"custom": [2.0]})
        assert report.comparisons[0].direction == "neutral"
        assert not report.ok

    def test_zero_baseline_uses_absolute_tolerance(self):
        small = compare_metrics({"custom": [0.0]}, {"custom": [0.01]}, tolerance=0.05)
        big = compare_metrics({"custom": [0.0]}, {"custom": [0.5]}, tolerance=0.05)
        assert small.ok
        assert not big.ok
        assert big.comparisons[0].relative_change is None

    def test_one_sided_metrics_reported_as_missing(self):
        report = compare_metrics({"a": [1.0], "only_base": [1.0]}, {"a": [1.0]})
        assert report.missing_metrics == ("only_base",)
        assert [c.metric for c in report.comparisons] == ["a"]

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_metrics({"a": [1.0]}, {"a": [1.0]}, tolerance=-0.1)

    def test_to_dict_names_the_regressions(self):
        report = compare_metrics(
            {"total_revenue": [100.0]},
            {"total_revenue": [50.0]},
            baseline_label="v1",
            candidate_label="v2",
        )
        payload = report.to_dict()
        assert payload["baseline"] == "v1"
        assert payload["regressions"] == ["total_revenue"]
        assert payload["ok"] is False


class TestMetricRegistry:
    def test_every_metric_has_a_direction(self):
        assert sorted(METRICS) == sorted(METRIC_DIRECTIONS)
        assert set(METRIC_DIRECTIONS.values()) <= {"higher", "lower", "neutral"}

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            MetricDef("bogus", "sideways", "no such direction", lambda r: 0.0)


class TestCompareMechanisms:
    """The cross-mechanism statistical comparison behind compare-mechanisms."""

    def seeded_store(self, fake_run_result):
        from repro.results.store import ResultStore

        store = ResultStore(":memory:")
        for seed in (0, 1, 2):
            store.record(
                fake_run_result(seed=seed, shortage_cost=(60.0, 40.0)),
                code_version="v1",
            )
            store.record(
                fake_run_result(
                    seed=seed, mechanism="fixed-price", shortage_cost=(200.0, 180.0)
                ),
                code_version="v1",
            )
            store.record(
                fake_run_result(
                    seed=seed, mechanism="priority", shortage_cost=(220.0, 190.0)
                ),
                code_version="v1",
            )
        return store

    def test_market_leads_lower_is_better_metric(self, fake_run_result):
        from repro.results.stats import compare_mechanisms

        with self.seeded_store(fake_run_result) as store:
            report = compare_mechanisms(store, "tiny")
        assert report.mechanisms[0] == "market"  # market leads the display order
        assert set(report.mechanisms) == {"market", "fixed-price", "priority"}
        assert report.best("shortage_cost") == "market"
        assert report.market_leads("shortage_cost")
        stats = report.metric_stats["shortage_cost"]
        assert stats["market"].mean == 40.0  # final-epoch value per replicate
        assert stats["fixed-price"].mean == 180.0

    def test_neutral_metrics_have_no_best(self, fake_run_result):
        from repro.results.stats import compare_mechanisms

        with self.seeded_store(fake_run_result) as store:
            report = compare_mechanisms(store, "tiny")
        assert report.directions["trade_count"] == "neutral"
        assert report.best("trade_count") is None
        assert not report.market_leads("trade_count")

    def test_tied_metrics_have_no_best(self, fake_run_result):
        from repro.results.stats import compare_mechanisms

        with self.seeded_store(fake_run_result) as store:
            report = compare_mechanisms(store, "tiny")
        # total_revenue is identical across the injected mechanisms: a tie.
        assert report.best("total_revenue") is None

    def test_explicit_mechanism_subset(self, fake_run_result):
        from repro.results.stats import compare_mechanisms

        with self.seeded_store(fake_run_result) as store:
            report = compare_mechanisms(
                store, "tiny", mechanisms=["market", "priority"]
            )
        assert report.mechanisms == ("market", "priority")

    def test_single_mechanism_store_is_an_error(self, fake_run_result):
        from repro.results.store import ResultStore
        from repro.results.stats import compare_mechanisms

        with ResultStore(":memory:") as store:
            store.record(fake_run_result(), code_version="v1")
            with pytest.raises(ValueError, match="at least two"):
                compare_mechanisms(store, "tiny")

    def test_empty_store_is_an_error(self, fake_run_result):
        from repro.results.store import ResultStore
        from repro.results.stats import compare_mechanisms

        with ResultStore(":memory:") as store:
            with pytest.raises(ValueError, match="no stored runs"):
                compare_mechanisms(store, "tiny")

    def test_to_dict_is_json_serialisable(self, fake_run_result):
        import json

        from repro.results.stats import compare_mechanisms

        with self.seeded_store(fake_run_result) as store:
            payload = compare_mechanisms(store, "tiny").to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["metrics"]["shortage_cost"]["best"] == "market"


class TestCompareVersionsAcrossStores:
    """compare_versions with a separate baseline store (the CI cross-PR gate)."""

    def test_baseline_side_reads_from_the_other_store(self, fake_run_result):
        from repro.results.store import ResultStore
        from repro.results.stats import compare_versions

        with ResultStore(":memory:") as baseline_store, ResultStore(":memory:") as store:
            baseline_store.record(fake_run_result(revenue=(100.0, 140.0)), code_version="pr-1")
            store.record(fake_run_result(revenue=(10.0, 14.0)), code_version="pr-2")
            report = compare_versions(
                store,
                "tiny",
                baseline_version="pr-1",
                candidate_version="pr-2",
                baseline_store=baseline_store,
            )
        assert not report.ok
        assert "total_revenue" in [c.metric for c in report.regressions]


class TestCompareMechanismsVersionScoping:
    def test_default_mechanism_list_is_scoped_to_the_compared_version(
        self, fake_run_result
    ):
        # priority exists only under the older v1; the latest-version
        # comparison must cover the mechanisms v2 actually has.
        from repro.results.store import ResultStore
        from repro.results.stats import compare_mechanisms

        with ResultStore(":memory:") as store:
            store.record(fake_run_result(seed=0), code_version="v1")
            store.record(fake_run_result(seed=0, mechanism="priority"), code_version="v1")
            store.record(fake_run_result(seed=0), code_version="v2")
            store.record(
                fake_run_result(seed=0, mechanism="proportional"), code_version="v2"
            )
            report = compare_mechanisms(store, "tiny")
        assert report.code_version == "v2"
        assert set(report.mechanisms) == {"market", "proportional"}
