"""The sqlite result store: keys, upserts, queries, code-version derivation.

Hand-built runs come from the shared ``fake_run_result`` factory fixture in
``tests/conftest.py``; real economies only run where the integration is the
point.
"""

import json

import pytest

from repro.agents.population import PopulationSpec
from repro.cluster.fleet_gen import FleetSpec
from repro.results.metrics import METRICS, run_metrics
from repro.results.store import (
    CODE_VERSION_ENV,
    DB_ENV,
    ResultStore,
    default_code_version,
    default_db_path,
    open_store,
)
from repro.simulation.catalog import ScenarioSpec
from repro.simulation.runner import ParallelRunner, run_scenario
from repro.simulation.scenario import ScenarioConfig


def tiny_spec(seed: int = 0, auctions: int = 1) -> ScenarioSpec:
    return ScenarioSpec(
        name="tiny",
        description="tiny store-test economy",
        config=ScenarioConfig(
            fleet=FleetSpec(cluster_count=3, sites=1, machines_range=(5, 12)),
            population=PopulationSpec(team_count=6, budget_per_team=100_000.0),
            seed=seed,
        ),
        auctions=auctions,
    )


class TestRunMetrics:
    def test_scalars_from_hand_built_result(self, fake_run_result):
        metrics = run_metrics(fake_run_result())
        assert metrics["final_median_premium"] == 1.1
        assert metrics["mean_settled_fraction"] == pytest.approx(0.6)
        assert metrics["mean_clearing_rounds"] == 3.0
        assert metrics["total_revenue"] == 240.0
        assert metrics["final_utilization"] == 0.6
        assert metrics["trade_count"] == 5.0

    def test_every_registered_metric_is_extracted(self, fake_run_result):
        assert sorted(run_metrics(fake_run_result())) == sorted(METRICS)

    def test_real_run_produces_finite_metrics(self):
        metrics = run_metrics(run_scenario(tiny_spec()))
        assert sorted(metrics) == sorted(METRICS)
        assert all(isinstance(v, float) for v in metrics.values())


class TestRecordAndQuery:
    def test_record_round_trips_the_full_result(self, fake_run_result):
        with ResultStore(":memory:") as store:
            result = fake_run_result()
            stored = store.record(result, code_version="v1")
            assert stored.key == ("tiny", 0, "v1", "auto", "market")
            (run,) = store.runs()
            assert run.result == result.to_dict()
            assert run.metrics == run_metrics(result)

    def test_same_key_replaces_instead_of_duplicating(self, fake_run_result):
        with ResultStore(":memory:") as store:
            store.record(fake_run_result(trade_count=5), code_version="v1")
            store.record(fake_run_result(trade_count=9), code_version="v1")
            assert len(store) == 1
            (run,) = store.runs()
            assert run.metrics["trade_count"] == 9.0

    def test_distinct_key_fields_create_distinct_rows(self, fake_run_result):
        with ResultStore(":memory:") as store:
            store.record(fake_run_result(seed=0), code_version="v1")
            store.record(fake_run_result(seed=1), code_version="v1")
            store.record(fake_run_result(seed=0), code_version="v2")
            store.record(fake_run_result(seed=0, engine="batch"), code_version="v1")
            store.record(fake_run_result(seed=0, mechanism="priority"), code_version="v1")
            assert len(store) == 5

    def test_filtered_queries(self, fake_run_result):
        with ResultStore(":memory:") as store:
            store.record(fake_run_result(scenario="a", seed=0), code_version="v1")
            store.record(fake_run_result(scenario="a", seed=1), code_version="v1")
            store.record(fake_run_result(scenario="b", seed=0), code_version="v1")
            assert store.scenarios() == ["a", "b"]
            assert [r.seed for r in store.runs(scenario="a")] == [0, 1]
            assert store.runs(scenario="a", code_version="v2") == []

    def test_code_versions_ordered_oldest_first(self, fake_run_result):
        with ResultStore(":memory:") as store:
            store.record(fake_run_result(seed=0), code_version="v1")
            store.record(fake_run_result(seed=0), code_version="v2")
            assert store.code_versions() == ["v1", "v2"]
            assert store.latest_code_version() == "v2"

    def test_refreshing_an_old_version_does_not_promote_it_to_latest(self, fake_run_result):
        # Re-recording v1's runs (same keys, upsert) must not flip the
        # default baseline/candidate direction of show/compare.
        with ResultStore(":memory:") as store:
            store.record(fake_run_result(seed=0), code_version="v1")
            store.record(fake_run_result(seed=0), code_version="v2")
            store.record(fake_run_result(seed=0, trade_count=8), code_version="v1")
            assert store.code_versions() == ["v1", "v2"]
            assert store.latest_code_version() == "v2"

    def test_replicate_metrics_default_to_latest_version(self, fake_run_result):
        with ResultStore(":memory:") as store:
            store.record(fake_run_result(seed=0, trade_count=1), code_version="v1")
            store.record(fake_run_result(seed=0, trade_count=7), code_version="v2")
            store.record(fake_run_result(seed=1, trade_count=9), code_version="v2")
            values = store.replicate_metrics("tiny")
            assert values["trade_count"] == [7.0, 9.0]

    def test_replicate_metrics_refuse_to_pool_engines(self, fake_run_result):
        # Engines are bit-identical by design; pooling them would double-count
        # seeds and understate the CIs.
        with ResultStore(":memory:") as store:
            store.record(fake_run_result(seed=0, engine="scalar"), code_version="v1")
            store.record(fake_run_result(seed=0, engine="batch"), code_version="v1")
            with pytest.raises(ValueError, match="span engines"):
                store.replicate_metrics("tiny")
            values = store.replicate_metrics("tiny", engine="batch")
            assert values["trade_count"] == [5.0]

    def test_replicate_metrics_refuse_to_pool_mechanisms(self, fake_run_result):
        # Mechanisms are different economies entirely; pooling them would
        # average a market with a quota policy.
        with ResultStore(":memory:") as store:
            store.record(fake_run_result(seed=0), code_version="v1")
            store.record(fake_run_result(seed=0, mechanism="priority"), code_version="v1")
            with pytest.raises(ValueError, match="span mechanisms"):
                store.replicate_metrics("tiny")
            values = store.replicate_metrics("tiny", mechanism="priority")
            assert values["trade_count"] == [5.0]

    def test_mechanisms_listing(self, fake_run_result):
        with ResultStore(":memory:") as store:
            store.record(fake_run_result(seed=0), code_version="v1")
            store.record(fake_run_result(seed=0, mechanism="fixed-price"), code_version="v1")
            assert store.mechanisms() == ["fixed-price", "market"]

    def test_wall_time_persists_and_averages(self, fake_run_result):
        with ResultStore(":memory:") as store:
            store.record(fake_run_result(seed=0, wall_time_seconds=2.0), code_version="v1")
            store.record(fake_run_result(seed=1, wall_time_seconds=4.0), code_version="v1")
            store.record(
                fake_run_result(seed=0, mechanism="priority", wall_time_seconds=0.5),
                code_version="v1",
            )
            runs = store.runs(mechanism="market")
            assert [r.wall_time for r in runs] == [2.0, 4.0]
            # keyed like ScenarioSpec.cost_key(): engine and auction count
            # distinguish differently-shaped runs of the same scenario
            assert store.mean_wall_times() == {
                ("tiny", "market", "auto", 2): 3.0,
                ("tiny", "priority", "auto", 2): 0.5,
            }

    def test_unmeasured_runs_are_absent_from_mean_wall_times(self, fake_run_result):
        with ResultStore(":memory:") as store:
            store.record(fake_run_result(seed=0), code_version="v1")  # no wall time
            assert store.mean_wall_times() == {}

    def test_summary_groups_by_scenario_version_engine(self, fake_run_result):
        with ResultStore(":memory:") as store:
            store.record(fake_run_result(seed=0), code_version="v1")
            store.record(fake_run_result(seed=1), code_version="v1")
            (row,) = store.summary()
            assert row["scenario"] == "tiny"
            assert row["replicates"] == 2
            assert row["seeds"] == "0..1"

    def test_empty_store(self):
        with ResultStore(":memory:") as store:
            assert len(store) == 0
            assert store.latest_code_version() is None
            assert store.replicate_metrics("tiny") == {}
            assert store.summary() == []

    def test_persists_across_reopen(self, tmp_path, fake_run_result):
        path = tmp_path / "nested" / "store.sqlite"
        with ResultStore(path) as store:
            store.record(fake_run_result(), code_version="v1")
        with ResultStore(path) as store:
            (run,) = store.runs()
            assert run.code_version == "v1"


class TestPreMechanismMigration:
    """Stores written before the mechanism dimension are migrated on open."""

    _OLD_SCHEMA = """
    CREATE TABLE runs (
        id           INTEGER PRIMARY KEY,
        scenario     TEXT    NOT NULL,
        seed         INTEGER NOT NULL,
        code_version TEXT    NOT NULL,
        engine       TEXT    NOT NULL,
        auctions     INTEGER NOT NULL,
        recorded_at  TEXT    NOT NULL,
        result_json  TEXT    NOT NULL,
        UNIQUE (scenario, seed, code_version, engine)
    );
    CREATE TABLE metrics (
        run_id INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
        metric TEXT    NOT NULL,
        value  REAL    NOT NULL,
        PRIMARY KEY (run_id, metric)
    );
    CREATE INDEX idx_runs_scenario ON runs (scenario, code_version, engine);
    """

    def old_store(self, tmp_path):
        import sqlite3

        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(path)
        conn.executescript(self._OLD_SCHEMA)
        conn.execute(
            "INSERT INTO runs (scenario, seed, code_version, engine, auctions,"
            " recorded_at, result_json) VALUES ('smoke', 0, 'pr-3', 'auto', 2,"
            " '2026-01-01T00:00:00', '{}')"
        )
        conn.execute(
            "INSERT INTO metrics (run_id, metric, value) VALUES (1, 'total_revenue', 240.0)"
        )
        conn.commit()
        conn.close()
        return path

    def test_old_rows_rekey_as_market_runs(self, tmp_path):
        path = self.old_store(tmp_path)
        with ResultStore(path) as store:
            (run,) = store.runs()
            assert run.mechanism == "market"
            assert run.wall_time is None
            assert run.run_id == 1  # ids survive, so metrics rows still attach
            assert run.metrics == {"total_revenue": 240.0}

    def test_migrated_store_accepts_mechanism_variants_of_the_same_key(
        self, tmp_path, fake_run_result
    ):
        path = self.old_store(tmp_path)
        with ResultStore(path) as store:
            store.record(
                fake_run_result(scenario="smoke", seed=0, mechanism="priority"),
                code_version="pr-3",
            )
            assert len(store) == 2  # old unique key would have rejected this

    def test_migration_is_idempotent(self, tmp_path):
        path = self.old_store(tmp_path)
        with ResultStore(path):
            pass
        with ResultStore(path) as store:  # second open must not re-migrate
            assert len(store) == 1

    def test_old_rows_carry_no_worker_provenance(self, tmp_path):
        path = self.old_store(tmp_path)
        with ResultStore(path) as store:
            (run,) = store.runs()
            assert run.worker is None


class TestWorkerProvenance:
    """The ``worker`` column records which execution lane produced each run."""

    _PRE_WORKER_SCHEMA = """
    CREATE TABLE runs (
        id           INTEGER PRIMARY KEY,
        scenario     TEXT    NOT NULL,
        seed         INTEGER NOT NULL,
        code_version TEXT    NOT NULL,
        engine       TEXT    NOT NULL,
        mechanism    TEXT    NOT NULL DEFAULT 'market',
        auctions     INTEGER NOT NULL,
        recorded_at  TEXT    NOT NULL,
        wall_time    REAL,
        result_json  TEXT    NOT NULL,
        UNIQUE (scenario, seed, code_version, engine, mechanism)
    );
    CREATE TABLE metrics (
        run_id INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
        metric TEXT    NOT NULL,
        value  REAL    NOT NULL,
        PRIMARY KEY (run_id, metric)
    );
    """

    def test_record_persists_the_worker(self, fake_run_result):
        import dataclasses

        with ResultStore(":memory:") as store:
            result = dataclasses.replace(fake_run_result(), worker="remote-w1")
            stored = store.record(result, code_version="v1")
            assert stored.worker == "remote-w1"
            assert store.runs()[0].worker == "remote-w1"

    def test_worker_defaults_to_none(self, fake_run_result):
        with ResultStore(":memory:") as store:
            store.record(fake_run_result(), code_version="v1")
            assert store.runs()[0].worker is None

    def test_rerecord_replaces_the_worker(self, fake_run_result):
        import dataclasses

        with ResultStore(":memory:") as store:
            store.record(
                dataclasses.replace(fake_run_result(), worker="w1"), code_version="v1"
            )
            store.record(
                dataclasses.replace(fake_run_result(), worker="w2"), code_version="v1"
            )
            assert len(store) == 1  # same key: refreshed, not duplicated
            assert store.runs()[0].worker == "w2"

    def test_pre_worker_store_migrates_in_place(self, tmp_path, fake_run_result):
        import dataclasses
        import sqlite3

        path = tmp_path / "pre-worker.sqlite"
        conn = sqlite3.connect(path)
        conn.executescript(self._PRE_WORKER_SCHEMA)
        conn.execute(
            "INSERT INTO runs (scenario, seed, code_version, engine, mechanism,"
            " auctions, recorded_at, wall_time, result_json) VALUES"
            " ('smoke', 0, 'pr-4', 'auto', 'market', 2, '2026-01-01T00:00:00',"
            " 1.5, '{}')"
        )
        conn.commit()
        conn.close()
        with ResultStore(path) as store:
            (run,) = store.runs()
            assert run.worker is None
            assert run.wall_time == 1.5  # untouched by the column addition
            store.record(
                dataclasses.replace(fake_run_result(scenario="smoke", seed=1), worker="w1"),
                code_version="pr-5",
            )
        with ResultStore(path) as store:  # idempotent on reopen
            assert {run.worker for run in store.runs()} == {None, "w1"}


class TestRunnerIntegration:
    def test_runner_records_every_replicate(self):
        with ResultStore(":memory:") as store:
            report = ParallelRunner(workers=1).run_replicates(
                tiny_spec(seed=10), 2, store=store, code_version="v1"
            )
            assert len(store) == 2
            assert [r.seed for r in store.runs()] == [10, 11]
            # the stored payloads are exactly the report's results (compare as
            # canonical JSON: migration stats may legitimately contain NaN,
            # and NaN != NaN under dict equality)
            stored = {r.seed: r.result for r in store.runs()}
            for result in report.results:
                assert json.dumps(stored[result.seed], sort_keys=True) == json.dumps(
                    result.to_dict(), sort_keys=True
                )

    def test_runner_resolves_default_code_version(self, monkeypatch):
        monkeypatch.setenv(CODE_VERSION_ENV, "env-version")
        with ResultStore(":memory:") as store:
            ParallelRunner(workers=1).run_specs([tiny_spec()], store=store)
            assert store.code_versions() == ["env-version"]


class TestDefaults:
    def test_default_db_path_env_override(self, monkeypatch):
        monkeypatch.setenv(DB_ENV, "/tmp/override.sqlite")
        assert str(default_db_path()) == "/tmp/override.sqlite"

    def test_default_db_path_without_env(self, monkeypatch):
        monkeypatch.delenv(DB_ENV, raising=False)
        assert default_db_path().name == "repro_results.sqlite"

    def test_code_version_env_override(self, monkeypatch):
        monkeypatch.setenv(CODE_VERSION_ENV, "pinned")
        assert default_code_version() == "pinned"

    def test_code_version_derived_from_tree_is_nonempty(self, monkeypatch):
        monkeypatch.delenv(CODE_VERSION_ENV, raising=False)
        version = default_code_version()
        assert isinstance(version, str) and version

    def test_open_store_uses_default_path(self, tmp_path, monkeypatch, fake_run_result):
        monkeypatch.setenv(DB_ENV, str(tmp_path / "from-env.sqlite"))
        with open_store() as store:
            store.record(fake_run_result(), code_version="v1")
        assert (tmp_path / "from-env.sqlite").exists()

    def test_stored_json_is_valid(self, tmp_path, fake_run_result):
        path = tmp_path / "store.sqlite"
        with ResultStore(path) as store:
            store.record(fake_run_result(), code_version="v1")
            (run,) = store.runs()
            assert json.dumps(run.result)  # JSON-serialisable all the way down


class TestSpanChecksHonourFilters:
    def test_mechanism_filter_narrows_the_engine_span_check(self, fake_run_result):
        # priority rows all share one engine; a different mechanism's engine
        # must not force an --engine flag onto the selection.
        with ResultStore(":memory:") as store:
            store.record(fake_run_result(seed=0, engine="batch"), code_version="v1")
            store.record(
                fake_run_result(seed=0, engine="scalar", mechanism="priority"),
                code_version="v1",
            )
            values = store.replicate_metrics("tiny", mechanism="priority")
            assert values["trade_count"] == [5.0]

    def test_engine_filter_narrows_the_mechanism_span_check(self, fake_run_result):
        with ResultStore(":memory:") as store:
            store.record(fake_run_result(seed=0, engine="batch"), code_version="v1")
            store.record(
                fake_run_result(seed=0, engine="scalar", mechanism="priority"),
                code_version="v1",
            )
            values = store.replicate_metrics("tiny", engine="scalar")
            assert values["trade_count"] == [5.0]

    def test_mechanisms_listing_filters_by_code_version(self, fake_run_result):
        with ResultStore(":memory:") as store:
            store.record(fake_run_result(seed=0, mechanism="priority"), code_version="v1")
            store.record(fake_run_result(seed=0), code_version="v2")
            assert store.mechanisms(scenario="tiny") == ["market", "priority"]
            assert store.mechanisms(scenario="tiny", code_version="v2") == ["market"]


class TestEmptySeriesAreAClearError:
    def test_record_without_allocation_series_raises_readably(self, fake_run_result):
        import dataclasses

        result = dataclasses.replace(
            fake_run_result(), shortage_cost=[], surplus_cost=[], satisfied_fraction=[]
        )
        with ResultStore(":memory:") as store:
            with pytest.raises(ValueError, match="shortage_cost"):
                store.record(result, code_version="v1")
