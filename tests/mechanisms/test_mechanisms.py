"""Tests for the allocation-mechanism layer: registry, baselines, dispatch."""

import numpy as np
import pytest

from repro.agents.population import PopulationSpec
from repro.cluster.fleet_gen import FleetSpec
from repro.mechanisms import (
    BASELINE_ALLOCATORS,
    DEFAULT_MECHANISM,
    BaselineEconomySimulation,
    BaselineMechanism,
    MarketMechanism,
    baseline_mechanism_names,
    get_mechanism,
    mechanism_names,
    register_mechanism,
    resolve_mechanisms,
    zero_migration_summary,
)
from repro.results.metrics import METRICS, run_metrics
from repro.simulation.catalog import ScenarioSpec
from repro.simulation.runner import run_scenario
from repro.simulation.scenario import ScenarioConfig


def tiny_spec(mechanism: str = "market", seed: int = 0, auctions: int = 2) -> ScenarioSpec:
    return ScenarioSpec(
        name="tiny",
        description="tiny mechanism-test economy",
        config=ScenarioConfig(
            fleet=FleetSpec(cluster_count=3, sites=1, machines_range=(5, 12)),
            population=PopulationSpec(team_count=6, budget_per_team=100_000.0),
            seed=seed,
        ),
        auctions=auctions,
        mechanism=mechanism,
    )


class TestRegistry:
    def test_all_five_mechanisms_registered(self):
        assert mechanism_names() == [
            "market", "fixed-price", "lottery", "priority", "proportional",
        ]

    def test_default_leads_the_listing(self):
        assert mechanism_names()[0] == DEFAULT_MECHANISM == "market"
        assert baseline_mechanism_names() == [
            "fixed-price", "lottery", "priority", "proportional",
        ]

    def test_lookup_returns_named_mechanism(self):
        for name in mechanism_names():
            assert get_mechanism(name).name == name

    def test_unknown_mechanism_lists_available(self):
        with pytest.raises(KeyError, match="market"):
            get_mechanism("no-such-policy")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_mechanism(MarketMechanism())

    def test_every_mechanism_has_a_description(self):
        for name in mechanism_names():
            assert get_mechanism(name).description.strip()


class TestResolveMechanisms:
    def test_none_means_default(self):
        assert resolve_mechanisms(None) == ["market"]

    def test_all_expands_to_registry(self):
        assert resolve_mechanisms("all") == mechanism_names()

    def test_comma_list_preserves_order(self):
        assert resolve_mechanisms("priority,market") == ["priority", "market"]

    def test_unknown_name_raises_with_available(self):
        with pytest.raises(KeyError, match="fixed-price"):
            resolve_mechanisms("market,bogus")

    def test_empty_selector_rejected(self):
        with pytest.raises(ValueError):
            resolve_mechanisms(" , ")


class TestMarketMechanism:
    def test_run_matches_runner_dispatch(self):
        direct = MarketMechanism().run(tiny_spec())
        dispatched = run_scenario(tiny_spec())
        # wall_time_seconds is excluded from equality on purpose
        assert direct == dispatched
        assert dispatched.mechanism == "market"

    def test_market_result_has_allocation_trajectories(self):
        result = MarketMechanism().run(tiny_spec())
        assert len(result.shortage_cost) == 2
        assert len(result.surplus_cost) == 2
        assert len(result.satisfied_fraction) == 2


class TestBaselineMechanisms:
    @pytest.mark.parametrize("name", ["fixed-price", "priority", "proportional", "lottery"])
    def test_trajectories_have_one_entry_per_epoch(self, name):
        result = get_mechanism(name).run(tiny_spec(mechanism=name, auctions=3))
        assert result.mechanism == name
        assert result.auctions == 3
        for series in (
            result.median_premium,
            result.mean_premium,
            result.settled_fraction,
            result.clearing_rounds,
            result.mean_clearing_price,
            result.revenue,
            result.mean_utilization,
            result.utilization_spread,
            result.shortage_cost,
            result.surplus_cost,
            result.satisfied_fraction,
        ):
            assert len(series) == 3

    @pytest.mark.parametrize("name", ["fixed-price", "priority", "proportional", "lottery"])
    def test_no_price_discovery(self, name):
        result = get_mechanism(name).run(tiny_spec(mechanism=name))
        assert result.clearing_rounds == [0, 0]
        assert result.median_premium == [1.0, 1.0]
        assert result.migration == zero_migration_summary()

    @pytest.mark.parametrize("name", ["fixed-price", "priority", "proportional", "lottery"])
    def test_deterministic_under_fixed_seed(self, name):
        spec = tiny_spec(mechanism=name, seed=7)
        assert get_mechanism(name).run(spec) == get_mechanism(name).run(spec)

    def test_different_seeds_differ(self):
        a = get_mechanism("fixed-price").run(tiny_spec("fixed-price", seed=1))
        b = get_mechanism("fixed-price").run(tiny_spec("fixed-price", seed=2))
        assert a != b

    def test_every_metric_extractable_from_baseline_runs(self):
        for name in baseline_mechanism_names():
            metrics = run_metrics(get_mechanism(name).run(tiny_spec(mechanism=name)))
            assert sorted(metrics) == sorted(METRICS)
            assert all(np.isfinite(v) for v in metrics.values())

    def test_grants_are_sticky_and_revenue_decays(self):
        """Epoch 1 harvests the big one-shot grant; later epochs only grant
        residual demand against drift-freed capacity."""
        result = get_mechanism("fixed-price").run(tiny_spec("fixed-price", auctions=3))
        assert result.revenue[0] > result.revenue[1]
        assert result.revenue[0] > result.revenue[2]

    def test_allocator_registry_backs_the_mechanisms(self):
        assert set(BASELINE_ALLOCATORS) == set(baseline_mechanism_names())


class TestBaselineEconomySimulation:
    def build(self, seed=0):
        scenario = tiny_spec(seed=seed).build()
        allocator = BASELINE_ALLOCATORS["fixed-price"]()
        return scenario, BaselineEconomySimulation(
            scenario, allocator, policy="fixed-price", drift_scale=0.01
        )

    def test_run_records_one_period_per_epoch(self):
        _, sim = self.build()
        history = sim.run(3)
        assert len(history) == 3
        assert [p.epoch for p in history.periods] == [1, 2, 3]

    def test_budgets_cap_requests_at_fixed_prices(self):
        scenario, sim = self.build()
        # Zero everyone's budget: nothing can be bought at the posted prices.
        for team in list(sim._budgets):
            sim._budgets[team] = 0.0
        period = sim.run_one_epoch()
        assert period.revenue == 0.0
        assert period.grant_count == 0

    def test_negative_drift_scale_rejected(self):
        scenario = tiny_spec().build()
        with pytest.raises(ValueError):
            BaselineEconomySimulation(
                scenario, BASELINE_ALLOCATORS["priority"](), policy="priority", drift_scale=-1
            )

    def test_utilization_evolves_between_epochs(self):
        _, sim = self.build()
        history = sim.run(2)
        first, second = history.periods
        assert not np.allclose(first.utilization_after, second.utilization_after)


class TestBaselineMechanismClass:
    def test_engine_and_seed_provenance_come_from_the_spec(self):
        spec = tiny_spec("priority", seed=11)
        result = BaselineMechanism(
            "priority", "test", BASELINE_ALLOCATORS["priority"]
        ).run(spec)
        assert result.seed == 11
        assert result.engine == spec.config.auction_engine
        assert result.teams == 6
        assert result.pools == 9
