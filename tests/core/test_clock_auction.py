"""Unit tests for the ascending clock auction (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.bids import Bid, BidderClass
from repro.core.bundles import BundleSet
from repro.core.clock_auction import (
    AscendingClockAuction,
    AuctionConfig,
    ConvergenceError,
)
from repro.core.increment import AdditiveIncrement, default_increment


def zero_reserve(pool_index):
    return np.zeros(len(pool_index))


def unit_reserve(pool_index, value=1.0):
    return np.full(len(pool_index), value)


class TestConstruction:
    def test_rejects_wrong_reserve_length(self, pool_index):
        with pytest.raises(ValueError):
            AscendingClockAuction(pool_index, [], reserve_prices=np.zeros(2))

    def test_rejects_negative_reserve(self, pool_index):
        with pytest.raises(ValueError):
            AscendingClockAuction(pool_index, [], reserve_prices=-unit_reserve(pool_index))

    def test_rejects_negative_supply(self, pool_index):
        with pytest.raises(ValueError):
            AscendingClockAuction(
                pool_index, [], reserve_prices=zero_reserve(pool_index),
                supply=-np.ones(len(pool_index)),
            )

    def test_rejects_bid_over_different_index(self, pool_index, three_cluster_index):
        bid = Bid.buy("t", three_cluster_index, [{"low/cpu": 1}], max_payment=1.0)
        with pytest.raises(ValueError):
            AscendingClockAuction(pool_index, [bid], reserve_prices=zero_reserve(pool_index))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AuctionConfig(max_rounds=0)
        with pytest.raises(ValueError):
            AuctionConfig(tolerance=-1.0)
        with pytest.raises(ValueError):
            AuctionConfig(stall_rounds=0)

    def test_bidder_classes_and_traders_flag(self, pool_index):
        bids = [
            Bid.buy("b", pool_index, [{"alpha/cpu": 1}], max_payment=10.0),
            Bid(bidder="t", bundles=BundleSet(pool_index, [{"alpha/cpu": 1, "beta/cpu": -1}]), limit=0.0),
        ]
        auction = AscendingClockAuction(pool_index, bids, reserve_prices=unit_reserve(pool_index))
        classes = auction.bidder_classes()
        assert classes["b"] is BidderClass.PURE_BUYER
        assert classes["t"] is BidderClass.TRADER
        assert auction.has_traders()


class TestClearingBehaviour:
    def test_no_bids_clears_immediately(self, pool_index):
        auction = AscendingClockAuction(pool_index, [], reserve_prices=unit_reserve(pool_index))
        outcome = auction.run()
        assert outcome.converged
        assert outcome.round_count == 1
        np.testing.assert_allclose(outcome.final_prices, unit_reserve(pool_index))

    def test_demand_within_supply_clears_at_reserve(self, pool_index):
        supply = np.full(len(pool_index), 1000.0)
        bid = Bid.buy("t", pool_index, [{"alpha/cpu": 10}], max_payment=1e6)
        auction = AscendingClockAuction(
            pool_index, [bid], reserve_prices=unit_reserve(pool_index, 2.0), supply=supply
        )
        outcome = auction.run()
        assert outcome.converged and outcome.round_count == 1
        np.testing.assert_allclose(outcome.final_prices, 2.0)

    def test_excess_demand_raises_prices_until_dropout(self, pool_index):
        # Two buyers compete for a single pool with zero operator supply: the
        # price must rise until both drop out (supply is zero).
        bids = [
            Bid.buy("rich", pool_index, [{"alpha/cpu": 10}], max_payment=200.0),
            Bid.buy("poor", pool_index, [{"alpha/cpu": 10}], max_payment=50.0),
        ]
        auction = AscendingClockAuction(
            pool_index, bids, reserve_prices=unit_reserve(pool_index),
            increment=default_increment(pool_index.capacities(), cap_fraction=0.25),
        )
        outcome = auction.run()
        assert outcome.converged
        i = pool_index.index_of("alpha/cpu")
        # price rose above the poor bidder's valuation per unit
        assert outcome.final_prices[i] > 5.0
        assert outcome.excess_demand[i] <= 0

    def test_buyer_seller_trade_clears_with_positive_allocation(self, pool_index):
        bids = [
            Bid.buy("buyer", pool_index, [{"alpha/cpu": 10}], max_payment=500.0),
            Bid.sell("seller", pool_index, [{"alpha/cpu": 10}], min_revenue=20.0),
        ]
        auction = AscendingClockAuction(
            pool_index, bids, reserve_prices=unit_reserve(pool_index, 5.0)
        )
        outcome = auction.run()
        assert outcome.converged
        i = pool_index.index_of("alpha/cpu")
        # seller supplies 10, buyer demands 10 -> net excess <= 0
        assert outcome.excess_demand[i] <= 1e-6
        assert outcome.final_demands["buyer"][i] == pytest.approx(10.0)
        assert outcome.final_demands["seller"][i] == pytest.approx(-10.0)

    def test_operator_supply_absorbs_demand(self, pool_index):
        supply = np.zeros(len(pool_index))
        supply[pool_index.index_of("alpha/cpu")] = 100.0
        bids = [
            Bid.buy(f"t{i}", pool_index, [{"alpha/cpu": 10}], max_payment=1e9) for i in range(5)
        ]
        auction = AscendingClockAuction(
            pool_index, bids, reserve_prices=unit_reserve(pool_index), supply=supply
        )
        outcome = auction.run()
        assert outcome.converged and outcome.round_count == 1

    def test_prices_monotonically_nondecreasing(self, pool_index):
        bids = [
            Bid.buy(f"t{i}", pool_index, [{"alpha/cpu": 50, "alpha/ram": 100}], max_payment=500.0 * (i + 1))
            for i in range(6)
        ]
        auction = AscendingClockAuction(pool_index, bids, reserve_prices=unit_reserve(pool_index))
        outcome = auction.run()
        trajectory = np.array([r.prices for r in outcome.rounds])
        assert np.all(np.diff(trajectory, axis=0) >= -1e-12)

    def test_only_overdemanded_pools_move(self, pool_index):
        bids = [Bid.buy("t", pool_index, [{"alpha/cpu": 100}], max_payment=150.0)]
        auction = AscendingClockAuction(pool_index, bids, reserve_prices=unit_reserve(pool_index))
        outcome = auction.run()
        final = outcome.final_prices
        assert final[pool_index.index_of("alpha/cpu")] > 1.0
        for name in pool_index.names:
            if name != "alpha/cpu":
                assert final[pool_index.index_of(name)] == pytest.approx(1.0)

    def test_active_bidder_count_decreases(self, pool_index):
        bids = [
            Bid.buy(f"t{i}", pool_index, [{"alpha/cpu": 100}], max_payment=100.0 * (i + 1))
            for i in range(5)
        ]
        auction = AscendingClockAuction(pool_index, bids, reserve_prices=unit_reserve(pool_index))
        outcome = auction.run()
        counts = outcome.active_bidder_counts()
        assert counts[0] == 5
        assert counts[-1] < 5
        assert all(a >= b for a, b in zip(counts, counts[1:]))


class TestOutcomeAccessors:
    def test_price_map_and_trajectory(self, pool_index):
        bids = [Bid.buy("t", pool_index, [{"alpha/cpu": 100}], max_payment=5000.0)]
        auction = AscendingClockAuction(pool_index, bids, reserve_prices=unit_reserve(pool_index))
        outcome = auction.run()
        prices = outcome.price_map()
        assert set(prices) == set(pool_index.names)
        traj = outcome.price_trajectory("alpha/cpu")
        assert len(traj) == outcome.round_count
        assert traj[-1] >= traj[0]

    def test_bidder_demands_recorded_when_enabled(self, pool_index):
        bids = [Bid.buy("t", pool_index, [{"alpha/cpu": 10}], max_payment=1e6)]
        auction = AscendingClockAuction(
            pool_index,
            bids,
            reserve_prices=unit_reserve(pool_index),
            config=AuctionConfig(record_bidder_demands=True),
        )
        outcome = auction.run()
        assert outcome.rounds[0].bidder_demands is not None
        assert "t" in outcome.rounds[0].bidder_demands

    def test_reserve_prices_stored_on_outcome(self, pool_index):
        auction = AscendingClockAuction(pool_index, [], reserve_prices=unit_reserve(pool_index, 3.0))
        outcome = auction.run()
        np.testing.assert_allclose(outcome.reserve_prices, 3.0)


class TestNonConvergence:
    def test_round_limit_raises_convergence_error(self, pool_index):
        # A tiny additive increment with a huge valuation cannot clear within
        # a handful of rounds.
        bid = Bid.buy("t", pool_index, [{"alpha/cpu": 100}], max_payment=1e12)
        auction = AscendingClockAuction(
            pool_index,
            [bid],
            reserve_prices=unit_reserve(pool_index),
            increment=AdditiveIncrement(alpha=1e-9),
            config=AuctionConfig(max_rounds=5),
        )
        with pytest.raises(ConvergenceError):
            auction.run()

    def test_oscillating_trader_never_converges(self, pool_index):
        # The paper notes there are "relatively small counterexamples" with
        # traders in which the clock auction never converges.  This is one: a
        # trader indifferent between (buy alpha, sell beta) and (buy beta,
        # sell alpha) with a zero limit always finds one of the two bundles at
        # non-positive cost, so it never drops out, and whichever pool it
        # currently demands gets its price raised -- forever.
        trader = Bid(
            bidder="loop",
            bundles=BundleSet(
                pool_index,
                [
                    {"alpha/cpu": 10, "beta/cpu": -10},
                    {"alpha/cpu": -10, "beta/cpu": 10},
                ],
            ),
            limit=0.0,
        )
        auction = AscendingClockAuction(
            pool_index,
            [trader],
            reserve_prices=unit_reserve(pool_index),
            config=AuctionConfig(max_rounds=200),
        )
        with pytest.raises(ConvergenceError):
            auction.run()

    def test_pure_buyers_always_converge(self, pool_index, rng):
        # Randomized pure-buyer instances must always clear (Section III-C-3).
        for trial in range(5):
            bids = [
                Bid.buy(
                    f"t{trial}-{i}",
                    pool_index,
                    [{"alpha/cpu": float(rng.uniform(1, 500)), "beta/ram": float(rng.uniform(1, 500))}],
                    max_payment=float(rng.uniform(10, 1e4)),
                )
                for i in range(10)
            ]
            auction = AscendingClockAuction(
                pool_index, bids, reserve_prices=unit_reserve(pool_index)
            )
            outcome = auction.run()
            assert outcome.converged
