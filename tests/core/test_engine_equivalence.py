"""Differential-equivalence harness across the four demand engines.

The repo's correctness story for every scaling change is "same bytes": the
scalar proxy loop is the reference implementation, and the batch,
incremental, and sharded engines must reproduce its canonical reports and
full round traces exactly.  This module is that guarantee as a reusable,
parametrised harness:

* :func:`assert_engines_equivalent` runs one catalog preset end to end on
  scalar, batch, incremental, and sharded and asserts byte-identical
  canonical reports plus bitwise-identical per-auction round traces — it is
  applied to every non-stress preset below and is what ``make equivalence``
  runs in CI;
* :class:`TestAuctionTraceEquivalence` is the auction-level harness (single
  auctions, hand-built populations) that used to live in
  ``test_batch_engine.py`` as scalar-vs-batch pairwise checks, now covering
  all four engines;
* :class:`TestDemandRecordOwnership` pins the ownership contract behind the
  copy-free round recording: recorded demand arrays are caller-owned
  snapshots that later rounds never mutate;
* regression tests pin the round-0 drop-out demand recording and
  :class:`ConvergenceError` parity across engines.
"""

import json

import numpy as np
import pytest

from repro.core.bids import Bid
from repro.core.bundles import BundleSet
from repro.core.clock_auction import (
    AscendingClockAuction,
    AuctionConfig,
    ConvergenceError,
)
from repro.simulation.catalog import default_sweep_names, get_scenario
from repro.simulation.economy import MarketEconomySimulation
from repro.simulation.runner import ScenarioRunResult

ENGINES = ("scalar", "batch", "incremental", "sharded")


def unit_reserve(pool_index, value=1.0):
    return np.full(len(pool_index), value)


def mixed_bids(pool_index, rng, *, buyers=12, sellers=3, traders=2):
    """A reproducible mixed population of buyers, sellers, and traders."""
    names = pool_index.names
    bids = []
    for i in range(buyers):
        bundles = []
        for _ in range(int(rng.integers(1, 4))):
            chosen = rng.choice(names, size=2, replace=False)
            bundles.append({str(n): float(rng.uniform(1, 200)) for n in chosen})
        bids.append(Bid.buy(f"buyer-{i}", pool_index, bundles, max_payment=float(rng.uniform(50, 5000))))
    for i in range(sellers):
        name = str(rng.choice(names))
        bids.append(
            Bid.sell(f"seller-{i}", pool_index, [{name: float(rng.uniform(10, 100))}],
                     min_revenue=float(rng.uniform(1, 50)))
        )
    for i in range(traders):
        a, b = (str(n) for n in rng.choice(names, size=2, replace=False))
        qty = float(rng.uniform(1, 20))
        bids.append(
            Bid(bidder=f"trader-{i}",
                bundles=BundleSet(pool_index, [{a: qty, b: -qty}]),
                limit=float(rng.uniform(0, 100)))
        )
    return bids


def assert_outcomes_identical(reference, other):
    """Bitwise comparison of two :class:`AuctionOutcome` objects."""
    assert reference.round_count == other.round_count
    assert reference.converged == other.converged
    assert reference.final_prices.tobytes() == other.final_prices.tobytes()
    assert reference.excess_demand.tobytes() == other.excess_demand.tobytes()
    assert list(reference.final_demands) == list(other.final_demands)
    for bidder, demand in reference.final_demands.items():
        assert demand.tobytes() == other.final_demands[bidder].tobytes(), bidder
    for ra, rb in zip(reference.rounds, other.rounds):
        assert ra.round_index == rb.round_index
        assert ra.prices.tobytes() == rb.prices.tobytes(), ra.round_index
        assert ra.excess_demand.tobytes() == rb.excess_demand.tobytes(), ra.round_index
        assert ra.active_bidders == rb.active_bidders, ra.round_index
        if ra.bidder_demands is None:
            assert rb.bidder_demands is None
        else:
            assert list(ra.bidder_demands) == list(rb.bidder_demands)
            for bidder, demand in ra.bidder_demands.items():
                assert demand.tobytes() == rb.bidder_demands[bidder].tobytes(), (
                    ra.round_index,
                    bidder,
                )


def run_spec_with_traces(spec, engine):
    """Run one catalog spec on one engine, returning (canonical dict, outcomes)."""
    spec = spec.with_overrides(engine=engine)
    scenario = spec.build()
    sim = MarketEconomySimulation(
        scenario, drift_scale=spec.drift_scale, preliminary_runs=spec.preliminary_runs
    )
    history = sim.run(spec.auctions)
    result = ScenarioRunResult.from_history(spec, scenario, history)
    payload = result.to_dict()
    # The engine name is the one field that legitimately differs.
    assert payload.pop("engine") == engine
    outcomes = [record.result.outcome for record in scenario.platform.history]
    return payload, outcomes


def assert_engines_equivalent(spec):
    """Every engine produces byte-identical runs of ``spec``.

    Canonical reports are compared as sorted JSON bytes; the per-auction
    round traces (prices, excess demand, active-bidder counts, final
    demands) are compared bitwise.
    """
    reference_payload, reference_outcomes = run_spec_with_traces(spec, "scalar")
    reference_bytes = json.dumps(reference_payload, sort_keys=True)
    for engine in ("batch", "incremental", "sharded"):
        payload, outcomes = run_spec_with_traces(spec, engine)
        assert json.dumps(payload, sort_keys=True) == reference_bytes, (
            f"{spec.name}: canonical report differs between scalar and {engine}"
        )
        assert len(outcomes) == len(reference_outcomes)
        for ref, got in zip(reference_outcomes, outcomes):
            assert_outcomes_identical(ref, got)


@pytest.mark.parametrize("name", default_sweep_names())
def test_preset_equivalent_across_engines(name):
    """Every non-stress catalog preset clears identically on all four engines."""
    assert_engines_equivalent(get_scenario(name))


class TestAuctionTraceEquivalence:
    """Single-auction harness: hand-built populations, all four engines."""

    def run_all(self, pool_index, bids, **kwargs):
        outcomes = {}
        for engine in ENGINES:
            auction = AscendingClockAuction(
                pool_index,
                bids,
                reserve_prices=kwargs.get("reserve_prices", unit_reserve(pool_index)),
                supply=kwargs.get("supply"),
                config=AuctionConfig(engine=engine, record_bidder_demands=True),
            )
            outcomes[engine] = auction.run()
        return outcomes

    def assert_identical(self, outcomes):
        for engine in ("batch", "incremental", "sharded"):
            assert_outcomes_identical(outcomes["scalar"], outcomes[engine])

    def test_competing_buyers(self, pool_index):
        bids = [
            Bid.buy(f"t{i}", pool_index, [{"alpha/cpu": 30}], max_payment=100.0 * (i + 1))
            for i in range(6)
        ]
        self.assert_identical(self.run_all(pool_index, bids))

    def test_buyers_sellers_traders(self, pool_index, rng):
        bids = mixed_bids(pool_index, rng)
        supply = np.full(len(pool_index), 25.0)
        self.assert_identical(self.run_all(pool_index, bids, supply=supply))

    def test_multi_bundle_xor_bids(self, pool_index):
        bids = [
            Bid.buy(
                f"t{i}",
                pool_index,
                [{"alpha/cpu": 20, "alpha/ram": 80}, {"beta/cpu": 20, "beta/ram": 80}],
                max_payment=400.0 + 100.0 * i,
            )
            for i in range(8)
        ]
        self.assert_identical(self.run_all(pool_index, bids))

    def test_shardable_population(self, pool_index):
        # Bids that never couple alpha/* with beta/* pools: the sharded
        # engine genuinely partitions here (no fallback) and must still
        # reproduce the other engines' bytes.
        bids = []
        for i in range(10):
            cluster = "alpha" if i % 2 == 0 else "beta"
            bids.append(
                Bid.buy(
                    f"t{i}",
                    pool_index,
                    [{f"{cluster}/cpu": 10.0 + i, f"{cluster}/ram": 20.0}],
                    max_payment=150.0 + 40.0 * i,
                )
            )
        outcomes = self.run_all(pool_index, bids, supply=np.full(len(pool_index), 30.0))
        self.assert_identical(outcomes)


class TestDemandRecordOwnership:
    """The ownership contract behind copy-free round recording.

    ``_collect`` no longer materialises per-bidder demand dicts, and
    ``_run_rounds`` no longer defensively copies what it records: the arrays
    ``_last_demand_map`` hands out are caller-owned snapshots.  These tests
    pin that contract — if an engine ever starts handing out views into
    buffers it later mutates in place, the early rounds' records would
    silently decay into copies of the final round.
    """

    def competing_bids(self, pool_index):
        # Escalating budgets: bidders drop out over several rounds, so each
        # round's demand vectors genuinely differ from the final round's.
        return [
            Bid.buy(f"t{i}", pool_index, [{"alpha/cpu": 30}], max_payment=40.0 * (i + 1))
            for i in range(6)
        ]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_recorded_rounds_survive_later_rounds(self, pool_index, engine):
        bids = self.competing_bids(pool_index)
        auction = AscendingClockAuction(
            pool_index,
            bids,
            reserve_prices=unit_reserve(pool_index),
            config=AuctionConfig(engine=engine, record_bidder_demands=True),
        )
        outcome = auction.run()
        assert outcome.round_count >= 2, "population must drop out over several rounds"
        # Re-announce each recorded round's prices on a fresh batch engine:
        # the recorded demands must still hold those rounds' values, not the
        # final round's (which they would if records aliased a live buffer).
        from repro.core.batch import BatchDemandEngine

        fresh = BatchDemandEngine(pool_index, bids)
        for round_state in outcome.rounds:
            expected = fresh.respond_all(round_state.prices).demand_map()
            for bidder, demand in round_state.bidder_demands.items():
                assert demand.tobytes() == expected[bidder].tobytes(), (
                    engine,
                    round_state.round_index,
                    bidder,
                )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_final_demands_are_stable_snapshots(self, pool_index, engine):
        bids = self.competing_bids(pool_index)
        auction = AscendingClockAuction(
            pool_index,
            bids,
            reserve_prices=unit_reserve(pool_index),
            config=AuctionConfig(engine=engine),
        )
        outcome = auction.run()
        snapshot = {k: v.copy() for k, v in outcome.final_demands.items()}
        # A later run on the same auction object must not corrupt the
        # previously returned outcome's demands.
        auction.run()
        for bidder, demand in outcome.final_demands.items():
            assert demand.tobytes() == snapshot[bidder].tobytes(), (engine, bidder)


class TestRoundZeroDropoutDemands:
    """Regression: bidders that exit in round 0 must still be recorded.

    ``AuctionRound.bidder_demands`` (under ``record_bidder_demands``) must
    contain *every* bidder in every round — including bidders whose proxy
    drops out at the reserve prices, whose recorded demand is the zero
    vector — identically on all four engines.
    """

    def test_round_zero_exit_recorded_by_every_engine(self, pool_index):
        bids = [
            Bid.buy("rich", pool_index, [{"alpha/cpu": 20}], max_payment=1e6),
            # Drops out immediately: the bundle costs 10 at the reserve
            # prices, far above the 0.5 limit.
            Bid.buy("out", pool_index, [{"alpha/cpu": 10}], max_payment=0.5),
            Bid.buy("rich2", pool_index, [{"alpha/ram": 30}], max_payment=1e6),
        ]
        outcomes = {}
        for engine in ENGINES:
            auction = AscendingClockAuction(
                pool_index,
                bids,
                reserve_prices=unit_reserve(pool_index),
                supply=np.full(len(pool_index), 15.0),
                config=AuctionConfig(engine=engine, record_bidder_demands=True),
            )
            outcomes[engine] = auction.run()
        for engine, outcome in outcomes.items():
            first = outcome.rounds[0]
            assert set(first.bidder_demands) == {"rich", "out", "rich2"}, engine
            assert not first.bidder_demands["out"].any(), engine
            for round_state in outcome.rounds:
                assert set(round_state.bidder_demands) == {"rich", "out", "rich2"}, engine
        for engine in ("batch", "incremental", "sharded"):
            assert_outcomes_identical(outcomes["scalar"], outcomes[engine])


class TestConvergenceErrorParity:
    """The failure modes raise the same error with the same message everywhere."""

    def circular_traders(self, pool_index):
        # Two traders passing quantity back and forth with limits that never
        # bind: excess demand persists on pools whose prices stop moving.
        return [
            Bid(
                bidder="ping",
                bundles=BundleSet(pool_index, [{"alpha/cpu": 10, "beta/cpu": -10}]),
                limit=1e9,
            ),
            Bid(
                bidder="pong",
                bundles=BundleSet(pool_index, [{"beta/cpu": 10, "alpha/cpu": -10}]),
                limit=1e9,
            ),
            Bid.buy("load", pool_index, [{"alpha/cpu": 50}], max_payment=1e9),
        ]

    def test_max_rounds_parity(self, pool_index):
        messages = {}
        for engine in ENGINES:
            auction = AscendingClockAuction(
                pool_index,
                self.circular_traders(pool_index),
                reserve_prices=unit_reserve(pool_index),
                config=AuctionConfig(engine=engine, max_rounds=5, stall_rounds=1000),
            )
            with pytest.raises(ConvergenceError) as excinfo:
                auction.run()
            messages[engine] = str(excinfo.value)
        assert len(set(messages.values())) == 1, messages
        assert "did not clear within 5 rounds" in messages["scalar"]

    def test_max_rounds_parity_with_real_shards(self, pool_index):
        # Decoupled insatiable buyers: the sharded engine genuinely
        # partitions (no fallback) and its merge loop must raise the same
        # error as the sequential engines.
        bids = [
            Bid.buy("alpha-hog", pool_index, [{"alpha/cpu": 50}], max_payment=1e12),
            Bid.buy("beta-hog", pool_index, [{"beta/cpu": 50}], max_payment=1e12),
        ]
        messages = {}
        for engine in ENGINES:
            auction = AscendingClockAuction(
                pool_index,
                bids,
                reserve_prices=unit_reserve(pool_index),
                config=AuctionConfig(engine=engine, max_rounds=5, stall_rounds=1000),
            )
            with pytest.raises(ConvergenceError) as excinfo:
                auction.run()
            messages[engine] = str(excinfo.value)
            if engine == "sharded":
                assert auction.sharded_fallback is False
        assert len(set(messages.values())) == 1, messages
        assert "did not clear within 5 rounds" in messages["scalar"]

    def test_stall_parity_with_real_shards(self, pool_index):
        class FrozenIncrement:
            """A pathological policy whose prices never move."""

            def increment(self, excess_demand, prices):
                return np.zeros_like(prices)

            def describe(self):
                return "frozen"

        bids = [
            Bid.buy("alpha-hog", pool_index, [{"alpha/cpu": 50}], max_payment=1e12),
            Bid.buy("beta-hog", pool_index, [{"beta/cpu": 50}], max_payment=1e12),
        ]
        messages = {}
        for engine in ENGINES:
            auction = AscendingClockAuction(
                pool_index,
                bids,
                reserve_prices=unit_reserve(pool_index),
                increment=FrozenIncrement(),
                config=AuctionConfig(engine=engine, stall_rounds=3),
            )
            with pytest.raises(ConvergenceError) as excinfo:
                auction.run()
            messages[engine] = str(excinfo.value)
        assert len(set(messages.values())) == 1, messages
        assert "stalled" in messages["scalar"]
