"""Unit tests for the vectorized batch demand engine (repro.core.batch)."""

import numpy as np
import pytest

from repro.core.batch import BatchDemandEngine, sum_demand_rows
from repro.core.bids import Bid
from repro.core.bundles import BundleSet
from repro.core.clock_auction import (
    BATCH_AUTO_THRESHOLD,
    AscendingClockAuction,
    AuctionConfig,
)
from repro.core.proxy import BidderProxy


def unit_reserve(pool_index, value=1.0):
    return np.full(len(pool_index), value)


def mixed_bids(pool_index, rng, *, buyers=12, sellers=3, traders=2):
    """A reproducible mixed population of buyers, sellers, and traders."""
    names = pool_index.names
    bids = []
    for i in range(buyers):
        bundles = []
        for _ in range(int(rng.integers(1, 4))):
            chosen = rng.choice(names, size=2, replace=False)
            bundles.append({str(n): float(rng.uniform(1, 200)) for n in chosen})
        bids.append(Bid.buy(f"buyer-{i}", pool_index, bundles, max_payment=float(rng.uniform(50, 5000))))
    for i in range(sellers):
        name = str(rng.choice(names))
        bids.append(
            Bid.sell(f"seller-{i}", pool_index, [{name: float(rng.uniform(10, 100))}],
                     min_revenue=float(rng.uniform(1, 50)))
        )
    for i in range(traders):
        a, b = (str(n) for n in rng.choice(names, size=2, replace=False))
        qty = float(rng.uniform(1, 20))
        bids.append(
            Bid(bidder=f"trader-{i}",
                bundles=BundleSet(pool_index, [{a: qty, b: -qty}]),
                limit=float(rng.uniform(0, 100)))
        )
    return bids


class TestBatchResponse:
    def test_empty_engine(self, pool_index):
        engine = BatchDemandEngine(pool_index, [])
        response = engine.respond_all(unit_reserve(pool_index))
        assert response.active_count == 0
        assert response.demand_map() == {}
        np.testing.assert_array_equal(response.total, np.zeros(len(pool_index)))

    def test_rejects_foreign_index_bid(self, pool_index, three_cluster_index):
        bid = Bid.buy("t", three_cluster_index, [{"low/cpu": 1}], max_payment=1.0)
        with pytest.raises(ValueError):
            BatchDemandEngine(pool_index, [bid])

    def test_matches_proxy_decisions(self, pool_index, rng):
        bids = mixed_bids(pool_index, rng)
        engine = BatchDemandEngine(pool_index, bids)
        for scale in (0.5, 1.0, 3.0, 10.0, 100.0):
            prices = unit_reserve(pool_index, scale)
            response = engine.respond_all(prices)
            for i, bid in enumerate(bids):
                decision = BidderProxy(bid).respond(prices)
                assert bool(response.active[i]) == decision.active, bid.bidder
                expected_idx = decision.bundle_index if decision.active else -1
                assert int(response.bundle_indices[i]) == (expected_idx if expected_idx is not None else -1)
                np.testing.assert_array_equal(response.quantities[i], decision.quantities)
            np.testing.assert_array_equal(
                response.total,
                sum_demand_rows(np.array([BidderProxy(b).respond(prices).quantities for b in bids])),
            )

    def test_argmin_tie_breaks_to_lowest_index(self, pool_index):
        # Two identical bundles: both engines must pick index 0.
        bid = Bid.buy("t", pool_index, [{"alpha/cpu": 10}, {"alpha/cpu": 10}], max_payment=1e6)
        engine = BatchDemandEngine(pool_index, [bid])
        response = engine.respond_all(unit_reserve(pool_index))
        assert int(response.bundle_indices[0]) == 0
        assert BidderProxy(bid).respond(unit_reserve(pool_index)).bundle_index == 0

    def test_dropout_mask_and_costs(self, pool_index):
        bids = [
            Bid.buy("in", pool_index, [{"alpha/cpu": 10}], max_payment=100.0),
            Bid.buy("out", pool_index, [{"alpha/cpu": 10}], max_payment=5.0),
        ]
        engine = BatchDemandEngine(pool_index, bids)
        response = engine.respond_all(unit_reserve(pool_index, 2.0))  # bundle costs 20
        assert response.active.tolist() == [True, False]
        assert response.costs.tolist() == [20.0, 0.0]
        np.testing.assert_array_equal(response.quantities[1], np.zeros(len(pool_index)))
        assert response.active_count == 1

    def test_dropout_price_scales_match_proxy(self, pool_index, rng):
        bids = mixed_bids(pool_index, rng)
        engine = BatchDemandEngine(pool_index, bids)
        prices = unit_reserve(pool_index)
        scales = engine.dropout_price_scales(prices)
        for i, bid in enumerate(bids):
            assert scales[i] == pytest.approx(BidderProxy(bid).dropout_price_scale(prices))

    def test_aggregate_demand_matches_scalar(self, pool_index, rng):
        from repro.core.proxy import aggregate_demand

        bids = mixed_bids(pool_index, rng)
        prices = unit_reserve(pool_index, 2.5)
        engine = BatchDemandEngine(pool_index, bids)
        proxies = [BidderProxy(b) for b in bids]
        np.testing.assert_allclose(engine.aggregate_demand(prices), aggregate_demand(proxies, prices))

    def test_bundle_rows_and_len(self, pool_index):
        bids = [
            Bid.buy("a", pool_index, [{"alpha/cpu": 1}, {"beta/cpu": 1}], max_payment=10.0),
            Bid.buy("b", pool_index, [{"alpha/ram": 1}], max_payment=10.0),
        ]
        engine = BatchDemandEngine(pool_index, bids)
        assert len(engine) == 2
        assert engine.bundle_rows == 3
        assert engine.matrix.shape == (3, len(pool_index))
        assert engine.limits.tolist() == [10.0, 10.0]


class TestEngineSelection:
    def test_config_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            AuctionConfig(engine="turbo")

    def test_explicit_engines_respected(self, pool_index):
        bids = [Bid.buy("t", pool_index, [{"alpha/cpu": 1}], max_payment=10.0)]
        for engine in ("scalar", "batch"):
            auction = AscendingClockAuction(
                pool_index, bids, reserve_prices=unit_reserve(pool_index),
                config=AuctionConfig(engine=engine),
            )
            assert auction.engine == engine

    def test_auto_threshold(self, pool_index):
        small = [Bid.buy(f"t{i}", pool_index, [{"alpha/cpu": 1}], max_payment=10.0) for i in range(3)]
        large = [
            Bid.buy(f"t{i}", pool_index, [{"alpha/cpu": 1}], max_payment=10.0)
            for i in range(BATCH_AUTO_THRESHOLD)
        ]
        reserve = unit_reserve(pool_index)
        assert AscendingClockAuction(pool_index, small, reserve_prices=reserve).engine == "scalar"
        assert AscendingClockAuction(pool_index, large, reserve_prices=reserve).engine == "batch"


# NOTE: the scalar/batch trace-equivalence tests that used to live here moved
# to tests/core/test_engine_equivalence.py, which runs the same harness across
# all three engines (scalar, batch, sharded) and over every catalog preset.
