"""Unit tests for bids, bid classification/validation, and bidder proxies."""

import numpy as np
import pytest

from repro.core.bids import (
    Bid,
    BidderClass,
    classify_bidder,
    group_bids_by_class,
    validate_bid,
)
from repro.core.bundles import BundleSet
from repro.core.proxy import BidderProxy, aggregate_demand


class TestBidConstruction:
    def test_buy_bid(self, pool_index):
        bid = Bid.buy("team-a", pool_index, [{"alpha/cpu": 10}], max_payment=100.0)
        assert bid.limit == 100.0
        assert bid.bidder_class is BidderClass.PURE_BUYER

    def test_buy_bid_rejects_negative_payment(self, pool_index):
        with pytest.raises(ValueError):
            Bid.buy("team-a", pool_index, [{"alpha/cpu": 10}], max_payment=-5.0)

    def test_sell_bid_negates_positive_quantities(self, pool_index):
        bid = Bid.sell("team-b", pool_index, [{"alpha/cpu": 10}], min_revenue=50.0)
        assert bid.limit == -50.0
        assert bid.bidder_class is BidderClass.PURE_SELLER
        assert bid.bundles.matrix[0, pool_index.index_of("alpha/cpu")] == -10.0

    def test_sell_bid_rejects_negative_revenue(self, pool_index):
        with pytest.raises(ValueError):
            Bid.sell("team-b", pool_index, [{"alpha/cpu": 10}], min_revenue=-1.0)

    def test_empty_bidder_name_rejected(self, pool_index):
        with pytest.raises(ValueError):
            Bid(bidder="", bundles=BundleSet(pool_index, [{"alpha/cpu": 1}]), limit=1.0)

    def test_non_finite_limit_rejected(self, pool_index):
        with pytest.raises(ValueError):
            Bid(bidder="x", bundles=BundleSet(pool_index, [{"alpha/cpu": 1}]), limit=float("inf"))

    def test_metadata_is_preserved(self, pool_index):
        bid = Bid.buy("t", pool_index, [{"alpha/cpu": 1}], max_payment=1.0, service="gfs")
        assert bid.metadata["service"] == "gfs"

    def test_cheapest_bundle_and_acceptable_at(self, pool_index):
        bid = Bid.buy("t", pool_index, [{"alpha/cpu": 10}, {"beta/cpu": 10}], max_payment=60.0)
        prices = np.ones(len(pool_index)) * 5.0
        bundle, cost = bid.cheapest_bundle(prices)
        assert cost == pytest.approx(50.0)
        assert bid.acceptable_at(prices)
        assert not bid.acceptable_at(prices * 2)


class TestClassification:
    def test_trader_classification(self, pool_index):
        trade = Bid(
            bidder="mover",
            bundles=BundleSet(pool_index, [{"alpha/cpu": -10, "beta/cpu": 10}]),
            limit=5.0,
        )
        assert classify_bidder(trade) is BidderClass.TRADER

    def test_group_bids_by_class(self, pool_index):
        bids = [
            Bid.buy("b", pool_index, [{"alpha/cpu": 1}], max_payment=1.0),
            Bid.sell("s", pool_index, [{"alpha/cpu": 1}], min_revenue=1.0),
        ]
        groups = group_bids_by_class(bids)
        assert len(groups[BidderClass.PURE_BUYER]) == 1
        assert len(groups[BidderClass.PURE_SELLER]) == 1
        assert groups[BidderClass.TRADER] == []


class TestValidateBid:
    def test_valid_bid_has_no_problems(self, pool_index):
        bid = Bid.buy("t", pool_index, [{"alpha/cpu": 1}], max_payment=1.0)
        assert validate_bid(bid) == []

    def test_empty_bundle_flagged(self, pool_index):
        bid = Bid(bidder="t", bundles=BundleSet(pool_index, [np.zeros(len(pool_index))]), limit=1.0)
        problems = validate_bid(bid)
        assert any("empty" in p for p in problems)

    def test_budget_violation_flagged(self, pool_index):
        bid = Bid.buy("t", pool_index, [{"alpha/cpu": 1}], max_payment=100.0)
        problems = validate_bid(bid, budget=50.0)
        assert any("budget" in p for p in problems)

    def test_sell_bid_with_positive_limit_flagged(self, pool_index):
        bid = Bid(bidder="t", bundles=BundleSet(pool_index, [{"alpha/cpu": -1}]), limit=10.0)
        problems = validate_bid(bid)
        assert any("sell bid" in p for p in problems)


class TestBidderProxy:
    def test_buyer_demands_when_affordable(self, pool_index):
        bid = Bid.buy("t", pool_index, [{"alpha/cpu": 10}], max_payment=100.0)
        proxy = BidderProxy(bid)
        prices = np.zeros(len(pool_index))
        prices[pool_index.index_of("alpha/cpu")] = 5.0
        decision = proxy.respond(prices)
        assert decision.active
        assert decision.cost == pytest.approx(50.0)
        assert decision.quantities[pool_index.index_of("alpha/cpu")] == 10.0

    def test_buyer_drops_out_when_too_expensive(self, pool_index):
        bid = Bid.buy("t", pool_index, [{"alpha/cpu": 10}], max_payment=10.0)
        proxy = BidderProxy(bid)
        prices = np.full(len(pool_index), 5.0)
        decision = proxy.respond(prices)
        assert not decision.active
        assert not np.any(decision.quantities)
        assert decision.bundle_index is None

    def test_proxy_switches_to_cheaper_alternative(self, pool_index):
        bid = Bid.buy("t", pool_index, [{"alpha/cpu": 10}, {"beta/cpu": 10}], max_payment=1000.0)
        proxy = BidderProxy(bid)
        prices = np.ones(len(pool_index))
        prices[pool_index.index_of("alpha/cpu")] = 3.0
        bundle = proxy.chosen_bundle(prices)
        assert bundle is not None
        assert bundle.describe() == {"beta/cpu": 10.0}

    def test_seller_stays_in_as_prices_rise(self, pool_index):
        bid = Bid.sell("s", pool_index, [{"alpha/cpu": 10}], min_revenue=20.0)
        proxy = BidderProxy(bid)
        low = np.full(len(pool_index), 1.0)
        high = np.full(len(pool_index), 50.0)
        # At low prices revenue 10 < 20 so the seller stays out...
        assert not proxy.respond(low).active
        # ...and comes in once the price covers its reserve revenue.
        assert proxy.respond(high).active

    def test_last_decision_recorded(self, pool_index):
        bid = Bid.buy("t", pool_index, [{"alpha/cpu": 1}], max_payment=100.0)
        proxy = BidderProxy(bid)
        assert proxy.last_decision is None
        proxy.respond(np.zeros(len(pool_index)))
        assert proxy.last_decision is not None

    def test_dropout_price_scale_for_buyer(self, pool_index):
        bid = Bid.buy("t", pool_index, [{"alpha/cpu": 10}], max_payment=100.0)
        proxy = BidderProxy(bid)
        prices = np.zeros(len(pool_index))
        prices[pool_index.index_of("alpha/cpu")] = 1.0
        scale = proxy.dropout_price_scale(prices)
        assert scale == pytest.approx(10.0)
        # at exactly scale*prices the bidder is on the margin; just above it drops out
        assert not proxy.respond(prices * (scale * 1.01)).active

    def test_aggregate_demand_sums_proxies(self, pool_index):
        bids = [
            Bid.buy("a", pool_index, [{"alpha/cpu": 10}], max_payment=1e6),
            Bid.buy("b", pool_index, [{"alpha/cpu": 5}], max_payment=1e6),
            Bid.sell("c", pool_index, [{"alpha/cpu": 4}], min_revenue=0.0),
        ]
        proxies = [BidderProxy(b) for b in bids]
        total = aggregate_demand(proxies, np.ones(len(pool_index)))
        assert total[pool_index.index_of("alpha/cpu")] == pytest.approx(11.0)
