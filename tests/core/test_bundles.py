"""Unit tests for bundles and XOR bundle sets."""

import numpy as np
import pytest

from repro.core.bundles import Bundle, BundleKind, BundleSet, bundle_kind, stack_bundle_sets


class TestBundleKind:
    def test_classification(self):
        assert bundle_kind(np.array([0.0, 0.0])) is BundleKind.EMPTY
        assert bundle_kind(np.array([1.0, 0.0])) is BundleKind.BUY
        assert bundle_kind(np.array([-1.0, 0.0])) is BundleKind.SELL
        assert bundle_kind(np.array([1.0, -1.0])) is BundleKind.TRADE

    def test_tolerance(self):
        assert bundle_kind(np.array([1e-15, -1e-15])) is BundleKind.EMPTY


class TestBundle:
    def test_from_mapping_and_describe_round_trip(self, pool_index):
        bundle = Bundle.from_mapping(pool_index, {"alpha/cpu": 10, "alpha/ram": 40})
        assert bundle.describe() == {"alpha/cpu": 10.0, "alpha/ram": 40.0}

    def test_empty_constructor(self, pool_index):
        assert Bundle.empty(pool_index).is_empty()

    def test_wrong_length_rejected(self, pool_index):
        with pytest.raises(ValueError):
            Bundle(index=pool_index, quantities=np.zeros(2))

    def test_non_finite_rejected(self, pool_index):
        vec = np.zeros(len(pool_index))
        vec[0] = np.nan
        with pytest.raises(ValueError):
            Bundle(index=pool_index, quantities=vec)

    def test_quantities_are_immutable(self, pool_index):
        bundle = Bundle.from_mapping(pool_index, {"alpha/cpu": 1})
        with pytest.raises(ValueError):
            bundle.quantities[0] = 5.0

    def test_cost_is_dot_product(self, pool_index):
        bundle = Bundle.from_mapping(pool_index, {"alpha/cpu": 10, "beta/disk": 100})
        prices = np.ones(len(pool_index)) * 2.0
        assert bundle.cost(prices) == pytest.approx(220.0)

    def test_cost_rejects_mismatched_prices(self, pool_index):
        bundle = Bundle.empty(pool_index)
        with pytest.raises(ValueError):
            bundle.cost(np.ones(2))

    def test_demanded_and_offered_split(self, pool_index):
        bundle = Bundle.from_mapping(pool_index, {"alpha/cpu": 5, "beta/cpu": -3})
        assert bundle.demanded().sum() == pytest.approx(5.0)
        assert bundle.offered().sum() == pytest.approx(3.0)

    def test_pools_touched(self, pool_index):
        bundle = Bundle.from_mapping(pool_index, {"alpha/cpu": 5, "beta/cpu": -3})
        assert set(bundle.pools_touched()) == {"alpha/cpu", "beta/cpu"}

    def test_scaled(self, pool_index):
        bundle = Bundle.from_mapping(pool_index, {"alpha/cpu": 5})
        assert bundle.scaled(2.0).describe() == {"alpha/cpu": 10.0}

    def test_addition(self, pool_index):
        a = Bundle.from_mapping(pool_index, {"alpha/cpu": 5})
        b = Bundle.from_mapping(pool_index, {"alpha/cpu": 2, "beta/ram": 1})
        assert (a + b).describe() == {"alpha/cpu": 7.0, "beta/ram": 1.0}

    def test_equality_and_hash(self, pool_index):
        a = Bundle.from_mapping(pool_index, {"alpha/cpu": 5})
        b = Bundle.from_mapping(pool_index, {"alpha/cpu": 5})
        c = Bundle.from_mapping(pool_index, {"alpha/cpu": 6})
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_kind_property(self, pool_index):
        assert Bundle.from_mapping(pool_index, {"alpha/cpu": 5}).kind is BundleKind.BUY
        assert Bundle.from_mapping(pool_index, {"alpha/cpu": -5}).kind is BundleKind.SELL


class TestBundleSet:
    def test_requires_at_least_one_bundle(self, pool_index):
        with pytest.raises(ValueError):
            BundleSet(pool_index, [])

    def test_accepts_mixed_input_forms(self, pool_index):
        bundle = Bundle.from_mapping(pool_index, {"alpha/cpu": 1})
        vec = pool_index.vector({"beta/cpu": 2})
        mapping = {"beta/ram": 3}
        bundle_set = BundleSet(pool_index, [bundle, vec, mapping])
        assert len(bundle_set) == 3
        assert bundle_set.matrix.shape == (3, len(pool_index))

    def test_rejects_wrong_shape_array(self, pool_index):
        with pytest.raises(ValueError):
            BundleSet(pool_index, [np.zeros(2)])

    def test_costs_vectorized_match_individual_costs(self, pool_index, rng):
        bundles = [
            {"alpha/cpu": float(rng.uniform(1, 10)), "alpha/ram": float(rng.uniform(1, 10))}
            for _ in range(5)
        ]
        bundle_set = BundleSet(pool_index, bundles)
        prices = rng.uniform(0.1, 10.0, size=len(pool_index))
        costs = bundle_set.costs(prices)
        for i in range(len(bundle_set)):
            assert costs[i] == pytest.approx(bundle_set.bundle(i).cost(prices))

    def test_cheapest_breaks_ties_deterministically(self, pool_index):
        same = {"alpha/cpu": 5}
        bundle_set = BundleSet(pool_index, [same, dict(same)])
        i, _ = bundle_set.cheapest(np.ones(len(pool_index)))
        assert i == 0

    def test_cheapest_picks_lower_cost_cluster(self, pool_index):
        bundle_set = BundleSet(pool_index, [{"alpha/cpu": 10}, {"beta/cpu": 10}])
        prices = np.ones(len(pool_index))
        prices[pool_index.index_of("alpha/cpu")] = 5.0
        i, cost = bundle_set.cheapest(prices)
        assert i == 1
        assert cost == pytest.approx(10.0)

    def test_aggregate_kind(self, pool_index):
        buys = BundleSet(pool_index, [{"alpha/cpu": 1}, {"beta/cpu": 1}])
        sells = BundleSet(pool_index, [{"alpha/cpu": -1}])
        mixed = BundleSet(pool_index, [{"alpha/cpu": 1}, {"beta/cpu": -1}])
        assert buys.aggregate_kind() is BundleKind.BUY
        assert sells.aggregate_kind() is BundleKind.SELL
        assert mixed.aggregate_kind() is BundleKind.TRADE

    def test_max_demand_and_offer(self, pool_index):
        bundle_set = BundleSet(pool_index, [{"alpha/cpu": 5, "beta/cpu": -2}, {"alpha/cpu": 3}])
        i_alpha = pool_index.index_of("alpha/cpu")
        i_beta = pool_index.index_of("beta/cpu")
        assert bundle_set.max_demand()[i_alpha] == 5.0
        assert bundle_set.max_offer()[i_beta] == 2.0

    def test_iteration_yields_bundles(self, pool_index):
        bundle_set = BundleSet(pool_index, [{"alpha/cpu": 1}, {"beta/cpu": 2}])
        assert [b.describe() for b in bundle_set] == [{"alpha/cpu": 1.0}, {"beta/cpu": 2.0}]

    def test_matrix_is_read_only(self, pool_index):
        bundle_set = BundleSet(pool_index, [{"alpha/cpu": 1}])
        with pytest.raises(ValueError):
            bundle_set.matrix[0, 0] = 9.0

    def test_stack_bundle_sets(self, pool_index):
        a = BundleSet(pool_index, [{"alpha/cpu": 1}])
        b = BundleSet(pool_index, [{"beta/cpu": 1}, {"beta/ram": 2}])
        stacked = stack_bundle_sets([a, b])
        assert stacked.shape == (3, len(pool_index))

    def test_stack_empty_rejected(self):
        with pytest.raises(ValueError):
            stack_bundle_sets([])
