"""Run every docstring example in the documented packages as a test.

The documentation promise of this repo is that every example in a core,
bidlang, cluster, or simulation docstring actually runs; this test executes
them all with :mod:`doctest` so an API change that breaks an example breaks
the tier-1 suite, not just the rendered docs.  The simulation sweep covers
the scenario catalog and parallel runner modules; :mod:`repro.results`
(the persistent result store and replicate statistics), :mod:`repro.mechanisms`
(the allocation-mechanism registry), :mod:`repro.exec` (the execution-backend
registry and remote fabric), :mod:`repro.agents` (strategy traits, populations,
and the tournament engine), and :mod:`repro.cli` are included so the
``python -m repro``, store, mechanism, backend, and tournament examples stay
honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro.agents
import repro.bidlang
import repro.cluster
import repro.core
import repro.exec
import repro.mechanisms
import repro.results
import repro.simulation


def _modules_of(package):
    names = [package.__name__]
    for info in pkgutil.iter_modules(package.__path__, prefix=package.__name__ + "."):
        names.append(info.name)
    return names


MODULES = sorted(
    set(
        _modules_of(repro.agents)
        + _modules_of(repro.core)
        + _modules_of(repro.bidlang)
        + _modules_of(repro.cluster)
        + _modules_of(repro.simulation)
        + _modules_of(repro.results)
        + _modules_of(repro.mechanisms)
        + _modules_of(repro.exec)
        + ["repro.cli"]
    )
)


@pytest.mark.parametrize("module_name", MODULES)
def test_docstring_examples_run(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"


def test_docstring_examples_exist():
    """The sweep must actually cover the core modules (guard against rot)."""
    finder = doctest.DocTestFinder()
    total = 0
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        total += sum(len(t.examples) for t in finder.find(module))
    assert total >= 40, f"expected a substantial doctest suite, found only {total} examples"
