"""Unit and integration tests for settlement, constraint checking, the exchange, and prices."""

import numpy as np
import pytest

from repro.core.bids import Bid
from repro.core.bundles import BundleSet
from repro.core.exchange import BidValidationError, CombinatorialExchange
from repro.core.prices import PriceTable, mean_price_by_type, price_dispersion, price_ratios
from repro.core.reserve import PAPER_PHI_1, FlatWeight, ReservePricer
from repro.core.settlement import Settlement, settle, verify_system_constraints
from repro.cluster.resources import ResourceType


def flat_prices(pool_index, value=1.0):
    return np.full(len(pool_index), value)


class TestSettle:
    def test_affordable_bid_wins_cheapest_bundle(self, pool_index):
        bid = Bid.buy("t", pool_index, [{"alpha/cpu": 10}, {"beta/cpu": 10}], max_payment=100.0)
        prices = flat_prices(pool_index, 2.0)
        prices[pool_index.index_of("beta/cpu")] = 1.0
        settlement = settle(pool_index, [bid], prices)
        line = settlement.line_for("t")
        assert line.won
        assert line.payment == pytest.approx(10.0)
        assert settlement.allocation_map("t") == {"beta/cpu": 10.0}

    def test_unaffordable_bid_loses(self, pool_index):
        bid = Bid.buy("t", pool_index, [{"alpha/cpu": 100}], max_payment=5.0)
        settlement = settle(pool_index, [bid], flat_prices(pool_index))
        line = settlement.line_for("t")
        assert not line.won
        assert line.payment == 0.0
        assert line.premium is None

    def test_premium_formula(self, pool_index):
        bid = Bid.buy("t", pool_index, [{"alpha/cpu": 10}], max_payment=120.0)
        settlement = settle(pool_index, [bid], flat_prices(pool_index, 10.0))
        line = settlement.line_for("t")
        # pays 100, limit 120 -> premium |120-100|/100 = 0.2
        assert line.premium == pytest.approx(0.2)

    def test_seller_payment_is_negative(self, pool_index):
        bid = Bid.sell("s", pool_index, [{"alpha/cpu": 10}], min_revenue=20.0)
        settlement = settle(pool_index, [bid], flat_prices(pool_index, 5.0))
        line = settlement.line_for("s")
        assert line.won
        assert line.payment == pytest.approx(-50.0)
        assert line.premium == pytest.approx(abs(-20.0 - (-50.0)) / 50.0)

    def test_settled_fraction_and_winner_split(self, pool_index):
        bids = [
            Bid.buy("win", pool_index, [{"alpha/cpu": 1}], max_payment=100.0),
            Bid.buy("lose", pool_index, [{"alpha/cpu": 100}], max_payment=1.0),
        ]
        settlement = settle(pool_index, bids, flat_prices(pool_index))
        assert settlement.settled_fraction() == pytest.approx(0.5)
        assert [l.bidder for l in settlement.winners] == ["win"]
        assert [l.bidder for l in settlement.losers] == ["lose"]

    def test_total_allocated_nets_buyers_and_sellers(self, pool_index):
        bids = [
            Bid.buy("b", pool_index, [{"alpha/cpu": 10}], max_payment=1e6),
            Bid.sell("s", pool_index, [{"alpha/cpu": 4}], min_revenue=0.0),
        ]
        settlement = settle(pool_index, bids, flat_prices(pool_index))
        assert settlement.total_allocated()[pool_index.index_of("alpha/cpu")] == pytest.approx(6.0)

    def test_line_for_unknown_bidder_raises(self, pool_index):
        settlement = settle(pool_index, [], flat_prices(pool_index))
        with pytest.raises(KeyError):
            settlement.line_for("ghost")

    def test_wrong_price_shape_rejected(self, pool_index):
        with pytest.raises(ValueError):
            settle(pool_index, [], np.zeros(2))

    def test_empty_settlement_statistics(self, pool_index):
        settlement = settle(pool_index, [], flat_prices(pool_index))
        assert settlement.settled_fraction() == 0.0
        assert settlement.premiums() == []
        assert settlement.total_payments() == 0.0


class TestVerifySystemConstraints:
    def test_consistent_settlement_passes(self, pool_index):
        bids = [
            Bid.buy("b1", pool_index, [{"alpha/cpu": 10}], max_payment=100.0),
            Bid.buy("b2", pool_index, [{"beta/cpu": 500}], max_payment=1.0),
        ]
        supply = np.full(len(pool_index), 1000.0)
        settlement = settle(pool_index, bids, flat_prices(pool_index), supply=supply)
        report = verify_system_constraints(settlement, bids)
        assert report.satisfied, report.violations

    def test_overallocation_detected(self, pool_index):
        bids = [Bid.buy("b", pool_index, [{"alpha/cpu": 10}], max_payment=1e6)]
        settlement = settle(pool_index, bids, flat_prices(pool_index))  # zero supply
        report = verify_system_constraints(settlement, bids)
        assert not report.satisfied
        assert any("constraint 2" in v for v in report.violations)

    def test_tampered_allocation_detected(self, pool_index):
        bids = [Bid.buy("b", pool_index, [{"alpha/cpu": 10}], max_payment=1e6)]
        supply = np.full(len(pool_index), 1000.0)
        settlement = settle(pool_index, bids, flat_prices(pool_index), supply=supply)
        # tamper: allocate a bundle that is not in Q_u
        line = settlement.lines[0]
        tampered = line.allocation.copy()
        tampered[pool_index.index_of("beta/cpu")] = 3.0
        settlement.lines[0] = type(line)(
            bidder=line.bidder,
            won=True,
            allocation=tampered,
            payment=line.payment,
            limit=line.limit,
            bundle_index=line.bundle_index,
        )
        report = verify_system_constraints(settlement, bids)
        assert any("constraint 1" in v for v in report.violations)

    def test_negative_price_detected(self, pool_index):
        settlement = Settlement(
            index=pool_index,
            prices=np.full(len(pool_index), -1.0),
            lines=[],
            supply=np.zeros(len(pool_index)),
        )
        report = verify_system_constraints(settlement, [])
        assert any("constraint 6" in v for v in report.violations)

    def test_unknown_bidder_in_settlement_detected(self, pool_index):
        bids = [Bid.buy("b", pool_index, [{"alpha/cpu": 1}], max_payment=10.0)]
        settlement = settle(pool_index, bids, flat_prices(pool_index), supply=np.full(len(pool_index), 10.0))
        report = verify_system_constraints(settlement, [])
        assert any("unknown bidder" in v for v in report.violations)


class TestCombinatorialExchange:
    def make_bids(self, pool_index, n=10, seed=0, payment_scale=3.0):
        rng = np.random.default_rng(seed)
        bids = []
        clusters = pool_index.clusters()
        for i in range(n):
            cluster = clusters[int(rng.integers(len(clusters)))]
            cpu = float(rng.uniform(5, 50))
            bundle = {f"{cluster}/cpu": cpu, f"{cluster}/ram": cpu * 4, f"{cluster}/disk": cpu * 50}
            cost = sum(q * pool_index.pool(k).unit_cost for k, q in bundle.items())
            bids.append(
                Bid.buy(f"team-{i}", pool_index, [bundle], max_payment=cost * float(rng.uniform(0.5, payment_scale)))
            )
        return bids

    def test_end_to_end_constraints_satisfied(self, pool_index):
        exchange = CombinatorialExchange(pool_index)
        result = exchange.run(self.make_bids(pool_index, 12))
        assert result.outcome.converged
        assert result.constraints.satisfied, result.constraints.violations
        assert 0.0 <= result.settlement.settled_fraction() <= 1.0

    def test_reserve_prices_reflect_congestion(self, pool_index):
        exchange = CombinatorialExchange(pool_index, weighting=PAPER_PHI_1)
        reserve = exchange.reserve_prices()
        assert reserve[pool_index.index_of("alpha/cpu")] > pool_index.pool("alpha/cpu").unit_cost
        assert reserve[pool_index.index_of("beta/cpu")] < pool_index.pool("beta/cpu").unit_cost

    def test_operator_supply_fraction(self, pool_index):
        full = CombinatorialExchange(pool_index, operator_supply_fraction=1.0)
        half = CombinatorialExchange(pool_index, operator_supply_fraction=0.5)
        none = CombinatorialExchange(pool_index, operator_supply_fraction=0.0)
        np.testing.assert_allclose(half.operator_supply(), full.operator_supply() * 0.5)
        assert not np.any(none.operator_supply())
        with pytest.raises(ValueError):
            CombinatorialExchange(pool_index, operator_supply_fraction=1.5)

    def test_invalid_bid_raises_in_strict_mode(self, pool_index):
        empty_bid = Bid(bidder="bad", bundles=BundleSet(pool_index, [np.zeros(len(pool_index))]), limit=1.0)
        exchange = CombinatorialExchange(pool_index, strict_validation=True)
        with pytest.raises(BidValidationError):
            exchange.run([empty_bid])

    def test_invalid_bid_dropped_in_lenient_mode(self, pool_index):
        empty_bid = Bid(bidder="bad", bundles=BundleSet(pool_index, [np.zeros(len(pool_index))]), limit=1.0)
        exchange = CombinatorialExchange(pool_index, strict_validation=False)
        result = exchange.run([empty_bid])
        assert result.settlement.lines == []

    def test_accepts_reserve_pricer_instance(self, pool_index):
        pricer = ReservePricer(weighting=FlatWeight(1.0))
        exchange = CombinatorialExchange(pool_index, weighting=pricer)
        np.testing.assert_allclose(exchange.reserve_prices(), pool_index.unit_costs())

    def test_summary_and_price_ratio(self, pool_index):
        exchange = CombinatorialExchange(pool_index)
        result = exchange.run(self.make_bids(pool_index, 8))
        summary = result.summary()
        assert summary["bidders"] == 8.0
        fixed = {pool.name: pool.unit_cost for pool in pool_index}
        ratios = result.price_ratio_to(fixed)
        assert set(ratios) == set(pool_index.names)
        assert all(r >= 0 for r in ratios.values())

    def test_preliminary_prices_match_full_run(self, pool_index):
        exchange = CombinatorialExchange(pool_index)
        bids = self.make_bids(pool_index, 6)
        np.testing.assert_allclose(
            exchange.preliminary_prices(bids).prices, exchange.run(bids).final_prices.prices
        )

    def test_congested_cluster_prices_rise_more(self, pool_index):
        # Demand directed at both clusters equally: the congested cluster
        # (alpha, 90% utilized) has far less operator supply, so its price
        # ratio to cost must exceed the idle cluster's.
        bids = []
        for i in range(10):
            for cluster in ("alpha", "beta"):
                bundle = {f"{cluster}/cpu": 30.0, f"{cluster}/ram": 120.0}
                cost = sum(q * pool_index.pool(k).unit_cost for k, q in bundle.items())
                bids.append(Bid.buy(f"{cluster}-t{i}", pool_index, [bundle], max_payment=cost * 5))
        exchange = CombinatorialExchange(pool_index)
        result = exchange.run(bids)
        ratios = result.price_ratio_to({p.name: p.unit_cost for p in pool_index})
        assert ratios["alpha/cpu"] > ratios["beta/cpu"]


class TestPriceTable:
    def test_validation(self, pool_index):
        with pytest.raises(ValueError):
            PriceTable(index=pool_index, prices=np.zeros(2))
        with pytest.raises(ValueError):
            PriceTable(index=pool_index, prices=np.full(len(pool_index), -1.0))

    def test_lookups(self, pool_index):
        table = PriceTable(index=pool_index, prices=np.arange(1.0, len(pool_index) + 1.0))
        assert table.price("alpha/cpu") == 1.0
        cluster_prices = table.cluster_prices("alpha")
        assert cluster_prices[ResourceType.CPU] == 1.0
        assert len(cluster_prices) == 3
        assert table.as_map()["beta/disk"] == float(len(pool_index))

    def test_bundle_cost(self, pool_index):
        table = PriceTable(index=pool_index, prices=np.full(len(pool_index), 2.0))
        assert table.bundle_cost({"alpha/cpu": 5, "beta/ram": 5}) == pytest.approx(20.0)

    def test_ratios_to(self, pool_index):
        base = PriceTable(index=pool_index, prices=np.full(len(pool_index), 2.0))
        market = PriceTable(index=pool_index, prices=np.full(len(pool_index), 3.0))
        ratios = market.ratios_to(base)
        assert all(r == pytest.approx(1.5) for r in ratios.values())

    def test_ratios_to_zero_baseline(self, pool_index):
        base = np.zeros(len(pool_index))
        market = PriceTable(index=pool_index, prices=np.ones(len(pool_index)))
        ratios = market.ratios_to(base)
        assert all(np.isinf(r) for r in ratios.values())

    def test_price_ratios_function(self):
        ratios = price_ratios({"a": 2.0, "b": 1.0}, {"a": 1.0, "b": 2.0})
        assert ratios == {"a": 2.0, "b": 0.5}
        with pytest.raises(KeyError):
            price_ratios({"a": 1.0}, {})

    def test_mean_price_by_type(self, pool_index):
        prices = pool_index.unit_costs()
        means = mean_price_by_type(pool_index, prices)
        assert means[ResourceType.CPU] == pytest.approx(10.0)
        assert means[ResourceType.DISK] == pytest.approx(0.05)

    def test_price_dispersion(self):
        assert price_dispersion([1.0, 1.0, 1.0]) == 0.0
        assert price_dispersion([0.5, 1.5]) > 0.0
        assert price_dispersion([]) == 0.0
