"""Unit tests for price-increment policies and congestion-weighted reserve pricing."""

import math

import numpy as np
import pytest

from repro.core.increment import (
    AdditiveIncrement,
    CappedIncrement,
    NormalizedIncrement,
    ProportionalIncrement,
    default_increment,
)
from repro.core.reserve import (
    PAPER_PHI_1,
    PAPER_PHI_2,
    PAPER_PHI_3,
    ExponentialWeight,
    FlatWeight,
    LinearWeight,
    ReciprocalWeight,
    ReservePricer,
    check_weighting_properties,
    figure2_curves,
    sweep_curve,
)


class TestAdditiveIncrement:
    def test_proportional_to_positive_excess(self):
        policy = AdditiveIncrement(alpha=0.5)
        z = np.array([10.0, -5.0, 0.0])
        step = policy.increment(z, np.ones(3))
        np.testing.assert_allclose(step, [5.0, 0.0, 0.0])

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            AdditiveIncrement(alpha=0.0)


class TestCappedIncrement:
    def test_fractional_cap_limits_step(self):
        policy = CappedIncrement(alpha=1.0, cap_fraction=0.1)
        prices = np.array([100.0, 100.0])
        z = np.array([1000.0, 1.0])
        step = policy.increment(z, prices)
        assert step[0] == pytest.approx(10.0)  # capped at 10% of price
        assert step[1] == pytest.approx(1.0)  # below cap, alpha*z

    def test_absolute_cap_variant(self):
        policy = CappedIncrement(alpha=1.0, cap_fraction=None, absolute_cap=2.0)
        step = policy.increment(np.array([1000.0]), np.array([5.0]))
        assert step[0] == pytest.approx(2.0)

    def test_requires_some_cap(self):
        with pytest.raises(ValueError):
            CappedIncrement(alpha=1.0, cap_fraction=None, absolute_cap=None)

    def test_zero_price_pools_can_still_move(self):
        policy = CappedIncrement(alpha=1.0, cap_fraction=0.1)
        step = policy.increment(np.array([10.0]), np.array([0.0]))
        assert step[0] > 0.0


class TestNormalizedIncrement:
    def test_cheaper_resources_move_less(self):
        base = np.array([10.0, 0.05])  # CPU vs disk unit costs
        policy = NormalizedIncrement(base_prices=base, alpha=1.0, cap_fraction=10.0)
        z = np.array([1.0, 1.0])
        step = policy.increment(z, np.array([10.0, 0.05]))
        assert step[0] > step[1]
        # the ratio of steps matches the ratio of base prices
        assert step[0] / step[1] == pytest.approx(base[0] / base[1])

    def test_rejects_negative_base_prices(self):
        with pytest.raises(ValueError):
            NormalizedIncrement(base_prices=np.array([-1.0]), alpha=1.0)


class TestProportionalIncrement:
    def test_step_relative_to_price_and_capacity(self):
        policy = ProportionalIncrement(scale=np.array([100.0, 100.0]), alpha=1.0, cap_fraction=0.5)
        prices = np.array([10.0, 10.0])
        z = np.array([10.0, 200.0])  # 10% and 200% of capacity
        step = policy.increment(z, prices)
        assert step[0] == pytest.approx(1.0)  # 10% of price
        assert step[1] == pytest.approx(5.0)  # capped at 50% of price

    def test_strictly_positive_movement_on_overdemanded_pools(self):
        policy = ProportionalIncrement(scale=np.array([1e12]), alpha=1e-9, cap_fraction=0.1)
        step = policy.increment(np.array([1.0]), np.array([1.0]))
        assert step[0] > 0.0

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            ProportionalIncrement(scale=np.array([0.0]), alpha=1.0)

    def test_default_increment_handles_zero_capacity(self):
        policy = default_increment(np.array([0.0, 10.0]))
        step = policy.increment(np.array([1.0, 1.0]), np.array([1.0, 1.0]))
        assert np.all(np.isfinite(step)) and np.all(step >= 0)

    def test_describe_strings(self):
        for policy in (
            AdditiveIncrement(),
            CappedIncrement(),
            NormalizedIncrement(base_prices=np.array([1.0])),
            default_increment(np.array([1.0])),
        ):
            assert isinstance(policy.describe(), str) and policy.describe()


class TestWeightingFunctions:
    def test_paper_phi1_matches_formula(self):
        for x in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert PAPER_PHI_1(x) == pytest.approx(math.exp(2 * (x - 0.5)))

    def test_paper_phi2_matches_formula(self):
        for x in (0.0, 0.5, 1.0):
            assert PAPER_PHI_2(x) == pytest.approx(math.exp(x - 0.5))

    def test_paper_phi3_matches_formula(self):
        for x in (0.0, 0.5, 1.0):
            assert PAPER_PHI_3(x) == pytest.approx(1.0 / (1.5 - x))

    def test_all_paper_curves_equal_one_at_half_utilization(self):
        for phi in (PAPER_PHI_1, PAPER_PHI_2, PAPER_PHI_3):
            assert phi(0.5) == pytest.approx(1.0)

    @pytest.mark.parametrize("phi", [PAPER_PHI_1, PAPER_PHI_2, PAPER_PHI_3], ids=["phi1", "phi2", "phi3"])
    def test_paper_curves_satisfy_all_five_properties(self, phi):
        props = check_weighting_properties(phi)
        assert all(props.values()), props

    def test_linear_weight_fails_congestion_steepness(self):
        props = check_weighting_properties(LinearWeight(low=0.5, high=1.5))
        assert props["monotonically_increasing"]
        # equal gaps, so it passes only with >= comparison; verify it is not *steeper*
        phi = LinearWeight(low=0.5, high=1.5)
        assert (phi(0.99) - phi(0.80)) <= (phi(0.40) - phi(0.15)) + 1e-9

    def test_flat_weight_is_constant(self):
        phi = FlatWeight(value=1.0)
        assert phi(0.0) == phi(0.5) == phi(1.0) == 1.0

    def test_out_of_range_utilization_rejected(self):
        with pytest.raises(ValueError):
            PAPER_PHI_1(1.2)
        with pytest.raises(ValueError):
            PAPER_PHI_3(-0.1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ExponentialWeight(steepness=0.0)
        with pytest.raises(ValueError):
            ReciprocalWeight(ceiling=1.0)
        with pytest.raises(ValueError):
            LinearWeight(low=2.0, high=1.0)
        with pytest.raises(ValueError):
            FlatWeight(value=0.0)

    def test_sweep_curve_shape(self):
        xs, ys = sweep_curve(PAPER_PHI_1, points=51)
        assert xs.shape == ys.shape == (51,)
        assert xs[0] == 0.0 and xs[-1] == 1.0

    def test_figure2_curves_have_three_series(self):
        curves = figure2_curves(points=11)
        assert len(curves) == 3
        for _, (xs, ys) in curves.items():
            assert len(xs) == len(ys) == 11


class TestReservePricer:
    def test_congested_pool_priced_above_cost(self, pool_index):
        pricer = ReservePricer(weighting=PAPER_PHI_1)
        prices = pricer.reserve_price_map(pool_index)
        # alpha has utilization 0.9 -> multiplier > 1; beta 0.3 -> < 1
        assert prices["alpha/cpu"] > pool_index.pool("alpha/cpu").unit_cost
        assert prices["beta/cpu"] < pool_index.pool("beta/cpu").unit_cost

    def test_reserve_price_formula(self, pool_index):
        pricer = ReservePricer(weighting=PAPER_PHI_1)
        prices = pricer.reserve_prices(pool_index)
        for i, pool in enumerate(pool_index):
            assert prices[i] == pytest.approx(PAPER_PHI_1(pool.utilization) * pool.unit_cost)

    def test_per_type_weighting_mapping(self, pool_index):
        from repro.cluster.resources import ResourceType

        pricer = ReservePricer(
            weighting={
                ResourceType.CPU: PAPER_PHI_1,
                ResourceType.RAM: PAPER_PHI_2,
                ResourceType.DISK: PAPER_PHI_3,
            }
        )
        prices = pricer.reserve_price_map(pool_index)
        pool = pool_index.pool("alpha/ram")
        assert prices["alpha/ram"] == pytest.approx(PAPER_PHI_2(pool.utilization) * pool.unit_cost)

    def test_missing_type_in_mapping_raises(self, pool_index):
        from repro.cluster.resources import ResourceType

        pricer = ReservePricer(weighting={ResourceType.CPU: PAPER_PHI_1})
        with pytest.raises(KeyError):
            pricer.reserve_prices(pool_index)

    def test_percentile_mode_uses_fleet_relative_ranks(self, three_cluster_index):
        fraction_pricer = ReservePricer(weighting=PAPER_PHI_1, use_percentiles=False)
        percentile_pricer = ReservePricer(weighting=PAPER_PHI_1, use_percentiles=True)
        frac_inputs = fraction_pricer.utilization_inputs(three_cluster_index)
        pct_inputs = percentile_pricer.utilization_inputs(three_cluster_index)
        # percentiles of three distinct utilization levels are 0, 0.5, 1.0 per type
        assert set(np.round(np.unique(pct_inputs), 6)) == {0.0, 0.5, 1.0}
        assert not np.allclose(frac_inputs, pct_inputs)

    def test_flat_weighting_reproduces_fixed_prices(self, pool_index):
        pricer = ReservePricer(weighting=FlatWeight(1.0))
        np.testing.assert_allclose(pricer.reserve_prices(pool_index), pool_index.unit_costs())

    def test_multipliers_monotone_in_utilization(self, three_cluster_index):
        pricer = ReservePricer(weighting=PAPER_PHI_1)
        m = {p.name: v for p, v in zip(three_cluster_index, pricer.multipliers(three_cluster_index))}
        assert m["low/cpu"] < m["mid/cpu"] < m["high/cpu"]
