"""Unit tests for the tree-based bidding language: AST, parser, flattening, validation."""

import numpy as np
import pytest

from repro.bidlang import (
    AndNode,
    BidLanguageSyntaxError,
    BidTreeValidationError,
    ChooseNode,
    ClusterLeaf,
    FlattenLimitError,
    PoolLeaf,
    XorNode,
    and_,
    choose,
    cluster_bundle,
    flatten,
    parse_json,
    parse_sexpr,
    pool,
    to_bundle_set,
    tree_bid,
    validate_tree,
    xor,
)
from repro.bidlang.validate import ValidationLimits, require_valid
from repro.core.bids import BidderClass


class TestAst:
    def test_leaf_validation(self):
        with pytest.raises(ValueError):
            PoolLeaf(pool_name="", quantity=1)
        with pytest.raises(ValueError):
            PoolLeaf(pool_name="a/cpu", quantity=0)
        with pytest.raises(ValueError):
            ClusterLeaf(cluster="c0")

    def test_internal_node_validation(self):
        with pytest.raises(ValueError):
            AndNode(parts=())
        with pytest.raises(ValueError):
            XorNode(alternatives=())
        with pytest.raises(ValueError):
            ChooseNode(k=3, options=(pool("a/cpu", 1),))

    def test_depth_and_leaf_count(self):
        tree = xor(
            cluster_bundle("c0", cpu=1),
            and_(pool("c1/cpu", 1), pool("c1/ram", 2)),
        )
        assert tree.depth() == 3
        assert tree.leaf_count() == 3

    def test_cluster_leaf_quantities(self):
        leaf = cluster_bundle("c0", cpu=1, disk=10)
        assert leaf.quantities() == {"c0/cpu": 1, "c0/disk": 10}

    def test_sexpr_round_trip(self):
        tree = xor(
            cluster_bundle("c0", cpu=1, ram=2, disk=3),
            and_(pool("c1/cpu", 4), choose(1, pool("c2/cpu", 5), pool("c3/cpu", 6))),
        )
        parsed = parse_sexpr(tree.to_sexpr())
        assert parsed == tree


class TestParser:
    def test_parse_pool_leaf(self):
        node = parse_sexpr("(pool cluster-01/cpu 100)")
        assert node == PoolLeaf("cluster-01/cpu", 100.0)

    def test_parse_cluster_leaf(self):
        node = parse_sexpr("(cluster cluster-01 100 400 10000)")
        assert node == ClusterLeaf("cluster-01", 100.0, 400.0, 10000.0)

    def test_parse_nested(self):
        node = parse_sexpr("(xor (cluster a 1 2 3) (and (pool b/cpu 1) (pool b/ram 4)))")
        assert isinstance(node, XorNode)
        assert len(node.alternatives) == 2
        assert isinstance(node.alternatives[1], AndNode)

    def test_parse_choose(self):
        node = parse_sexpr("(choose 2 (pool a/cpu 1) (pool b/cpu 1) (pool c/cpu 1))")
        assert isinstance(node, ChooseNode)
        assert node.k == 2

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "(pool only-one-arg)",
            "(cluster c0 1 2)",
            "(frobnicate 1 2)",
            "(pool a/cpu 1",
            "(pool a/cpu 1)) extra",
            "(and)",
            "(xor)",
            "(choose 1)",
            "(pool a/cpu notanumber)",
        ],
    )
    def test_syntax_errors(self, text):
        with pytest.raises(BidLanguageSyntaxError):
            parse_sexpr(text)

    def test_parse_json_forms(self):
        node = parse_json(
            {
                "xor": [
                    {"cluster": "c0", "cpu": 1, "ram": 2, "disk": 3},
                    {"and": [{"pool": "c1/cpu", "quantity": 4}, {"pool": "c1/ram", "quantity": 8}]},
                    {"choose": 1, "options": [{"pool": "c2/cpu", "quantity": 1}, {"pool": "c3/cpu", "quantity": 1}]},
                ]
            }
        )
        assert isinstance(node, XorNode)
        assert node.leaf_count() == 5

    def test_parse_json_errors(self):
        with pytest.raises(BidLanguageSyntaxError):
            parse_json({"unknown": []})
        with pytest.raises(BidLanguageSyntaxError):
            parse_json({"and": []})
        with pytest.raises(BidLanguageSyntaxError):
            parse_json({"choose": 1})
        with pytest.raises(BidLanguageSyntaxError):
            parse_json([1, 2, 3])  # type: ignore[arg-type]


class TestFlatten:
    def test_leaf_flattens_to_single_combo(self):
        assert flatten(pool("a/cpu", 5)) == [{"a/cpu": 5}]

    def test_xor_unions_alternatives(self):
        combos = flatten(xor(pool("a/cpu", 1), pool("b/cpu", 2)))
        assert combos == [{"a/cpu": 1}, {"b/cpu": 2}]

    def test_and_sums_quantities(self):
        combos = flatten(and_(pool("a/cpu", 1), pool("a/ram", 4), pool("a/cpu", 2)))
        assert combos == [{"a/cpu": 3, "a/ram": 4}]

    def test_and_of_xor_is_cross_product(self):
        tree = and_(
            xor(pool("a/cpu", 1), pool("b/cpu", 1)),
            xor(pool("a/ram", 4), pool("b/ram", 4)),
        )
        combos = flatten(tree)
        assert len(combos) == 4

    def test_choose_k_of_n(self):
        tree = choose(2, pool("a/cpu", 1), pool("b/cpu", 1), pool("c/cpu", 1))
        combos = flatten(tree)
        assert len(combos) == 3  # C(3,2)
        assert {"a/cpu": 1, "b/cpu": 1} in combos

    def test_duplicate_combos_are_deduplicated(self):
        tree = xor(pool("a/cpu", 1), pool("a/cpu", 1))
        assert flatten(tree) == [{"a/cpu": 1}]

    def test_limit_enforced(self):
        # 2^10 = 1024 combinations exceeds a limit of 100
        tree = and_(*[xor(pool(f"c{i}/cpu", 1), pool(f"d{i}/cpu", 1)) for i in range(10)])
        with pytest.raises(FlattenLimitError):
            flatten(tree, max_bundles=100)

    def test_unknown_node_type_rejected(self):
        class Weird:
            pass

        with pytest.raises(TypeError):
            flatten(Weird())  # type: ignore[arg-type]

    def test_to_bundle_set_and_tree_bid(self, pool_index):
        tree = xor(
            cluster_bundle("alpha", cpu=10, ram=40, disk=100),
            cluster_bundle("beta", cpu=10, ram=40, disk=100),
        )
        bundle_set = to_bundle_set(tree, pool_index)
        assert len(bundle_set) == 2
        bid = tree_bid("team-x", tree, pool_index, limit=500.0, service="gfs")
        assert bid.bidder == "team-x"
        assert bid.bidder_class is BidderClass.PURE_BUYER
        assert bid.metadata["service"] == "gfs"

    def test_sell_tree_bid(self, pool_index):
        tree = cluster_bundle("alpha", cpu=-10, ram=-40)
        bid = tree_bid("seller", tree, pool_index, limit=-100.0)
        assert bid.bidder_class is BidderClass.PURE_SELLER


class TestValidate:
    def test_valid_tree(self, pool_index):
        tree = xor(cluster_bundle("alpha", cpu=10), cluster_bundle("beta", cpu=10))
        assert validate_tree(tree, pool_index) == []
        require_valid(tree, pool_index)  # should not raise

    def test_unknown_pool_and_cluster_flagged(self, pool_index):
        tree = xor(pool("nowhere/cpu", 1), cluster_bundle("missing", cpu=1))
        problems = validate_tree(tree, pool_index)
        assert any("unknown pool" in p for p in problems)
        assert any("unknown cluster" in p for p in problems)

    def test_oversized_leaf_flagged(self, pool_index):
        capacity = pool_index.pool("alpha/cpu").capacity
        tree = pool("alpha/cpu", capacity * 10)
        problems = validate_tree(tree, pool_index)
        assert any("exceeds" in p for p in problems)

    def test_depth_and_leaf_limits(self, pool_index):
        deep = pool("alpha/cpu", 1)
        for _ in range(5):
            deep = and_(deep)
        problems = validate_tree(deep, pool_index, limits=ValidationLimits(max_depth=3))
        assert any("depth" in p for p in problems)

        wide = xor(*[cluster_bundle("alpha", cpu=1) for _ in range(10)])
        problems = validate_tree(wide, pool_index, limits=ValidationLimits(max_leaves=5))
        assert any("leaves" in p for p in problems)

    def test_require_valid_raises(self, pool_index):
        with pytest.raises(BidTreeValidationError):
            require_valid(pool("nowhere/cpu", 1), pool_index)
