"""Tests for the experiment drivers at reduced (test) scale.

The benchmarks run these at paper scale; here they run small so the unit test
suite stays fast, and the assertions focus on the qualitative shape each
driver must reproduce.
"""

import numpy as np
import pytest

from repro.experiments.ablation_increment import run_ablation_increment
from repro.experiments.ablation_reserve import run_ablation_reserve
from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.experiments.clock_rounds import run_clock_rounds
from repro.experiments.config import TEST_SCALE, ExperimentConfig
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.scaling import run_scaling
from repro.experiments.table1 import run_table1


class TestConfig:
    def test_scenario_config_carries_scale(self):
        config = ExperimentConfig(cluster_count=5, team_count=9, seed=1)
        scenario_config = config.scenario_config()
        assert scenario_config.fleet.cluster_count == 5
        assert scenario_config.population.team_count == 9
        assert scenario_config.seed == 1

    def test_overrides(self):
        from repro.core.reserve import FlatWeight

        scenario_config = TEST_SCALE.scenario_config(weighting=FlatWeight(1.0))
        assert isinstance(scenario_config.weighting, FlatWeight)


class TestFigure2:
    def test_curves_match_formulas_and_properties(self):
        result = run_figure2(points=21)
        assert len(result.curves) == 3
        phi1 = result.curve("phi1")
        np.testing.assert_allclose(phi1.ys, np.exp(2 * (phi1.xs - 0.5)))
        for curve in result.curves:
            assert all(curve.properties.values())
            assert np.all(np.diff(curve.ys) > 0)

    def test_unknown_curve_lookup(self):
        with pytest.raises(KeyError):
            run_figure2(points=5).curve("phi9")


class TestFigure6:
    def test_price_ratios_track_utilization(self):
        result = run_figure6(TEST_SCALE)
        assert len(result.rows) == TEST_SCALE.cluster_count
        assert result.correlation_with_utilization > 0.3
        ratios = [row.cpu_ratio for row in result.rows]
        assert min(ratios) < 1.0 < max(ratios)
        # rows come back sorted by CPU ratio
        assert ratios == sorted(ratios)


class TestFigure7:
    def test_bids_in_idle_pools_offers_in_congested_pools(self):
        result = run_figure7(TEST_SCALE)
        assert result.migration["bid_count"] > 0
        if result.migration["offer_count"] > 0:
            assert result.migration["median_offer_percentile"] > result.migration["median_bid_percentile"]
        assert result.migration["median_bid_percentile"] < 60.0
        assert any(key.endswith("Bids") for key in result.boxplots)


class TestTable1:
    def test_premiums_decline_over_auctions(self):
        result = run_table1(TEST_SCALE, auctions=3)
        assert len(result.rows) == 3
        assert result.trend["median_last"] <= result.trend["median_first"]
        assert result.last_rows(2) == result.rows[-2:]
        for row in result.rows:
            assert 0.0 <= row.settled_fraction <= 1.0


class TestScaling:
    def test_small_grid_runs_and_fits(self):
        result = run_scaling(
            bidder_counts=(10, 20), cluster_counts=(4, 8), reference_bidders=20, reference_clusters=8
        )
        assert len(result.points) >= 3
        reference = result.point(20, 24)
        assert reference.seconds < 30.0
        assert np.isfinite(result.bidder_exponent)
        assert np.isfinite(result.pool_exponent)
        with pytest.raises(KeyError):
            result.point(999, 999)


class TestClockRounds:
    def test_trace_properties(self):
        result = run_clock_rounds(cluster_count=6, team_count=15, seed=1)
        outcome = result.outcome
        assert outcome.converged
        assert result.rounds == len(outcome.rounds)
        assert result.moved_pools >= 0
        trajectory = np.array([r.prices for r in outcome.rounds])
        assert np.all(np.diff(trajectory, axis=0) >= -1e-12)
        assert len(result.excess_demand_norms()) == result.rounds


class TestBaselineComparison:
    def test_market_balances_utilization_better(self):
        result = run_baseline_comparison(TEST_SCALE, market_auctions=2)
        assert set(result.metrics) == {
            "fixed_price_fcfs", "proportional_share", "priority", "lottery", "market",
        }
        market = result.market()
        fixed = result.baseline("fixed_price_fcfs")
        assert market.utilization_spread <= fixed.utilization_spread + 1e-9
        assert 0.0 <= market.satisfied_fraction <= 1.0
        assert result.balance["spread_before"] >= 0.0


class TestAblations:
    def test_increment_ablation_shows_normalization_benefit(self):
        result = run_ablation_increment(cluster_count=6, team_count=15, seed=1, max_rounds=2000)
        assert len(result.rows) == 4
        naive = result.row("additive")
        proportional = result.row("proportional")
        assert proportional.converged
        assert proportional.disk_to_cpu_ratio_skew <= naive.disk_to_cpu_ratio_skew

    def test_reserve_ablation_steers_demand(self):
        result = run_ablation_reserve(TEST_SCALE)
        assert len(result.rows) == 4
        flat = result.row("flat")
        phi1 = result.row("phi1")
        assert phi1.bid_share_in_underutilized >= flat.bid_share_in_underutilized - 0.05
        for row in result.rows:
            assert 0.0 <= row.settled_fraction <= 1.0
