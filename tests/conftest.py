"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.fleet_gen import FleetSpec, generate_fleet, small_fleet
from repro.cluster.pools import PoolIndex, ResourcePool
from repro.cluster.resources import ResourceType


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def fake_run_result():
    """Factory for a hand-built ScenarioRunResult (no economy run).

    Shared by the result-store and CLI suites so injected runs (e.g. a
    deliberately degraded revenue for regression tests) come from one
    place that tracks the ScenarioRunResult field list.
    """
    from repro.simulation.runner import ScenarioRunResult

    def build(
        scenario="tiny",
        seed=0,
        engine="auto",
        mechanism="market",
        trade_count=5,
        revenue=(100.0, 140.0),
        shortage_cost=(60.0, 40.0),
        wall_time_seconds=None,
    ):
        return ScenarioRunResult(
            scenario=scenario,
            seed=seed,
            engine=engine,
            auctions=2,
            clusters=1,
            pools=3,
            teams=2,
            median_premium=[1.4, 1.1],
            mean_premium=[1.5, 1.2],
            settled_fraction=[0.5, 0.7],
            clearing_rounds=[4, 2],
            mean_clearing_price=[2.0, 3.0],
            revenue=list(revenue),
            mean_utilization=[0.5, 0.6],
            utilization_spread=[0.2, 0.1],
            migration={},
            trade_count=trade_count,
            mechanism=mechanism,
            shortage_cost=list(shortage_cost),
            surplus_cost=[90.0, 70.0],
            satisfied_fraction=[0.5, 0.8],
            wall_time_seconds=wall_time_seconds,
        )

    return build


@pytest.fixture(autouse=True)
def _isolated_result_store(tmp_path, monkeypatch):
    """Point the persistent result store at a per-test temp file.

    ``python -m repro run/sweep`` records into the store by default; without
    this, CLI tests would write ``repro_results.sqlite`` into the working
    directory.  Pinning the code version keeps stored keys deterministic
    (no git subprocess per record).
    """
    monkeypatch.setenv("REPRO_RESULTS_DB", str(tmp_path / "results.sqlite"))
    monkeypatch.setenv("REPRO_CODE_VERSION", "test-version")


def build_pool_index(
    cluster_utils: dict[str, float] | None = None,
    *,
    capacity_scale: float = 1000.0,
) -> PoolIndex:
    """Build a small, fully deterministic pool index for unit tests.

    ``cluster_utils`` maps cluster name -> utilization fraction applied to all
    three resource dimensions of that cluster.
    """
    cluster_utils = cluster_utils or {"alpha": 0.9, "beta": 0.3}
    pools: list[ResourcePool] = []
    costs = {ResourceType.CPU: 10.0, ResourceType.RAM: 2.0, ResourceType.DISK: 0.05}
    caps = {
        ResourceType.CPU: capacity_scale,
        ResourceType.RAM: capacity_scale * 4,
        ResourceType.DISK: capacity_scale * 100,
    }
    for cluster, util in cluster_utils.items():
        for rtype in ResourceType:
            pools.append(
                ResourcePool(
                    cluster=cluster,
                    rtype=rtype,
                    capacity=caps[rtype],
                    unit_cost=costs[rtype],
                    utilization=util,
                )
            )
    return PoolIndex(pools)


@pytest.fixture
def pool_index() -> PoolIndex:
    """Two clusters (one congested at 0.9, one idle at 0.3), three pools each."""
    return build_pool_index()


@pytest.fixture
def three_cluster_index() -> PoolIndex:
    """Three clusters with low / medium / high utilization."""
    return build_pool_index({"low": 0.15, "mid": 0.55, "high": 0.95})


@pytest.fixture
def tiny_fleet():
    """A generated synthetic fleet small enough for fast tests."""
    return small_fleet(4, seed=7)


@pytest.fixture
def medium_fleet():
    """A mid-size fleet (10 clusters) used by integration tests."""
    spec = FleetSpec(cluster_count=10, sites=3, machines_range=(10, 40))
    return generate_fleet(spec, seed=11)
